"""Virtual Output Queue bank.

An input-queued switch keeps, at each input port, one queue per output
port — the VOQ discipline that avoids head-of-line blocking.  Figure 2's
processing logic "places [packets] into their respective Virtual Output
Queue" and "as the status of a VOQ changes, the subsystem generates
scheduling requests".

:class:`VoqBank` is the n×n bank for the whole switch, with:

* per-VOQ :class:`~repro.switches.buffers.PacketQueue` storage,
* a status-change hook that fires exactly when the paper says requests
  are generated (empty↔non-empty transitions and byte-count changes),
* O(1) demand-matrix snapshots for the scheduling logic.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.errors import ConfigurationError
from repro.switches.buffers import DropPolicy, PacketQueue


class VoqBank:
    """n×n virtual output queues with demand snapshots.

    Parameters
    ----------
    sim, n_ports:
        Simulator and port count.
    capacity_bytes:
        Per-VOQ byte cap (None = unbounded).  The *aggregate* cap that
        Figure 1 reasons about is enforced by
        :class:`~repro.switches.memory.BufferMemoryMeter` instead, since
        real ToR SRAM is shared.
    on_status_change:
        Called with ``(src, dst, queued_bytes)`` after every enqueue or
        dequeue — the request-generation hook.
    """

    def __init__(self, sim: Simulator, n_ports: int,
                 capacity_bytes: Optional[int] = None,
                 policy: DropPolicy = DropPolicy.TAIL_DROP,
                 on_status_change:
                 Optional[Callable[[int, int, int], None]] = None) -> None:
        if n_ports < 2:
            raise ConfigurationError(f"VoqBank needs >= 2 ports, got {n_ports}")
        self.sim = sim
        self.n_ports = n_ports
        self.on_status_change = on_status_change
        self._queues: List[List[Optional[PacketQueue]]] = []
        for src in range(n_ports):
            row: List[Optional[PacketQueue]] = []
            for dst in range(n_ports):
                if src == dst:
                    row.append(None)
                else:
                    row.append(PacketQueue(
                        sim, f"voq[{src},{dst}]",
                        capacity_bytes=capacity_bytes, policy=policy))
            self._queues.append(row)
        # Dense byte counts for O(n^2) demand snapshots without walking
        # deques; kept in sync by _touch.
        self._bytes = np.zeros((n_ports, n_ports), dtype=np.int64)
        self._packets = np.zeros((n_ports, n_ports), dtype=np.int64)
        self._total = 0
        self._peak_total = 0

    # -- access -----------------------------------------------------------------

    def queue(self, src: int, dst: int) -> PacketQueue:
        """The VOQ for (src, dst); raises on the src == dst diagonal."""
        q = self._queues[src][dst]
        if q is None:
            raise ConfigurationError(f"no VOQ on diagonal ({src},{src})")
        return q

    # -- operations --------------------------------------------------------------

    def enqueue(self, packet: Packet) -> bool:
        """Place ``packet`` into VOQ (packet.src, packet.dst).

        Returns False if tail-dropped.  Fires the status hook either way
        a real request generator watches occupancy, and a drop changes
        nothing.
        """
        q = self.queue(packet.src, packet.dst)
        accepted = q.enqueue(packet)
        if accepted:
            self._touch(packet.src, packet.dst)
        return accepted

    def dequeue(self, src: int, dst: int) -> Packet:
        """Remove the head packet of VOQ (src, dst)."""
        q = self.queue(src, dst)
        packet = q.dequeue()
        self._touch(src, dst)
        return packet

    def head(self, src: int, dst: int) -> Optional[Packet]:
        """Peek the head packet of VOQ (src, dst)."""
        return self.queue(src, dst).head()

    def is_empty(self, src: int, dst: int) -> bool:
        """True when VOQ (src, dst) holds no packets."""
        return self.queue(src, dst).is_empty

    # -- aggregate views ------------------------------------------------------------

    def demand_bytes(self) -> np.ndarray:
        """n×n matrix of queued bytes (a copy; callers may mutate)."""
        return self._bytes.copy()

    def demand_packets(self) -> np.ndarray:
        """n×n matrix of queued packet counts (a copy)."""
        return self._packets.copy()

    @property
    def total_bytes(self) -> int:
        """Total bytes stored across the whole bank."""
        return int(self._bytes.sum())

    @property
    def total_packets(self) -> int:
        """Total packets stored across the whole bank."""
        return int(self._packets.sum())

    def peak_total_bytes(self) -> int:
        """Peak simultaneous occupancy — the Figure 1 measurement.

        Exact, not sampled: recomputed from per-queue step series would
        be expensive, so the bank tracks the running aggregate in
        :meth:`_touch`.
        """
        return self._peak_total

    def nonempty_voqs(self) -> List[tuple]:
        """(src, dst) of every backlogged VOQ."""
        src_idx, dst_idx = np.nonzero(self._packets)
        return list(zip(src_idx.tolist(), dst_idx.tolist()))

    def drops_total(self) -> int:
        """Total packets tail-dropped across the bank."""
        return sum(q.drops.count
                   for row in self._queues for q in row if q is not None)

    # -- internals ---------------------------------------------------------------------

    def _touch(self, src: int, dst: int) -> None:
        q = self._queues[src][dst]
        assert q is not None
        old = int(self._bytes[src, dst])
        self._bytes[src, dst] = q.bytes
        self._packets[src, dst] = len(q)
        self._total += q.bytes - old
        if self._total > self._peak_total:
            self._peak_total = self._total
        if self.on_status_change is not None:
            self.on_status_change(src, dst, q.bytes)


__all__ = ["VoqBank"]
