"""iSLIP — round-robin iterative matching (McKeown, ToN 1999).

The workhorse of commercial input-queued switches and the algorithm a
NetFPGA scheduling-logic block would most plausibly host: deterministic,
O(1) per-port state (two rotating pointers), and one request/grant/
accept round per clock with trivial combinational logic.

Differences from PIM:

* Grant and accept choices are *round-robin from a pointer*, not random.
* Pointers advance **only when the grant is accepted in the first
  iteration**.  This "pointer desynchronisation" property is what lifts
  throughput to 100 % under uniform traffic where PIM-1 saturates at
  ~63 % — reproduced in E5.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.schedulers.base import Scheduler, ScheduleResult
from repro.schedulers.matching import Matching


class IslipScheduler(Scheduler):
    """iSLIP with ``iterations`` rounds and persistent pointers.

    The pointers persist across :meth:`compute` calls, as in hardware —
    resetting them each slot would destroy the desynchronisation effect.
    """

    name = "islip"

    def __init__(self, n_ports: int, iterations: int = 1) -> None:
        super().__init__(n_ports)
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        self.iterations = iterations
        #: Grant pointer per output: next input to favour.
        self.grant_ptr = [0] * n_ports
        #: Accept pointer per input: next output to favour.
        self.accept_ptr = [0] * n_ports
        self._ports = np.arange(n_ports)

    def reset_pointers(self) -> None:
        """Re-zero both pointer arrays (tests / fresh epochs)."""
        self.grant_ptr = [0] * self.n_ports
        self.accept_ptr = [0] * self.n_ports

    @staticmethod
    def _round_robin_pick(candidates: List[int], pointer: int,
                          n: int) -> int:
        """First candidate at or after ``pointer`` (mod n)."""
        best = None
        best_rank = n
        for candidate in candidates:
            rank = (candidate - pointer) % n
            if rank < best_rank:
                best_rank = rank
                best = candidate
        assert best is not None
        return best

    def compute(self, demand: np.ndarray) -> ScheduleResult:
        return self.compute_trusted(self._check_demand(demand))

    def compute_trusted(self, demand: np.ndarray) -> ScheduleResult:
        """Vectorised request/grant/accept; see the base-class contract.

        Both phases are "pick the candidate nearest a rotating pointer",
        which over all ports at once is an argmin over a rank matrix
        ``(index - pointer) mod n`` with non-candidates masked to ``n``.
        Ranks within a row/column are distinct, so the argmin is unique
        and the result is identical to the per-port scalar loops this
        replaces.
        """
        n = self.n_ports
        ports = self._ports
        pos = demand > 0
        out_of_arr = np.full(n, -1, dtype=np.int64)
        in_unmatched = np.ones(n, dtype=bool)
        out_unmatched = np.ones(n, dtype=bool)
        # The grant-rank matrix changes only when pointers do
        # (iteration 0), so it is hoisted out of the iteration loop.
        grant_ptr = np.asarray(self.grant_ptr)
        accept_ptr = np.asarray(self.accept_ptr)
        grant_base = (ports[:, None] - grant_ptr[None, :]) % n
        # Sentinel key above every real (rank, output) accept key.
        blocked = n * (n + 1)
        rounds_used = 0
        for iteration in range(self.iterations):
            rounds_used += 1
            # Grant phase: each unmatched output picks the requesting
            # unmatched input nearest its grant pointer.
            req = pos & in_unmatched[:, None] & out_unmatched[None, :]
            grant_rank = np.where(req, grant_base, n)
            chosen_in = grant_rank.argmin(axis=0)
            granted_outs = ports[grant_rank[chosen_in, ports] < n]
            if granted_outs.size == 0:
                break
            # Accept phase: each input picks the granting output nearest
            # its accept pointer.  Only ~n (input, output) grant edges
            # exist, so instead of an n×n argmin this reduces each
            # input's grants with a segment-min over composite keys
            # rank·n + output; ranks are distinct per input, so the
            # minimal key identifies the minimal-rank output.
            grant_in = chosen_in[granted_outs]
            accept_rank = (granted_outs - accept_ptr[grant_in]) % n
            best_key = np.full(n, blocked, dtype=np.int64)
            np.minimum.at(best_key, grant_in,
                          accept_rank.astype(np.int64) * n + granted_outs)
            new_in = ports[best_key < blocked]
            new_out = best_key[new_in] % n
            out_of_arr[new_in] = new_out
            in_unmatched[new_in] = False
            out_unmatched[new_out] = False
            if iteration == 0:
                # Pointer update rule: one past the matched partner,
                # only for first-iteration matches.
                for inp, out in zip(new_in.tolist(), new_out.tolist()):
                    self.grant_ptr[out] = (inp + 1) % n
                    self.accept_ptr[inp] = (out + 1) % n
                if self.iterations > 1:
                    grant_ptr = np.asarray(self.grant_ptr)
                    accept_ptr = np.asarray(self.accept_ptr)
                    grant_base = (ports[:, None] - grant_ptr[None, :]) % n
        self.last_stats = {"iterations": rounds_used, "matchings": 1}
        return ScheduleResult(
            matchings=[(Matching.from_output_array(out_of_arr), 0)])


__all__ = ["IslipScheduler"]
