"""Microbenchmarks: raw speed of the hot paths.

Conventional pytest-benchmark measurements (many rounds) of the pieces
that dominate experiment wall-clock: scheduler ``compute`` calls, the
event engine, and the cell fabric's slot loop.  They guard against
performance regressions that would silently make the experiment harness
unusable.

The bench definitions themselves live in :mod:`repro.perf.benches` —
one registry shared with the ``repro perf`` trajectory runner — and
this module only parametrises pytest-benchmark over it.  Add a new hot
path there, and both frontends pick it up.
"""

import os

import pytest

from repro.perf.benches import iter_benches

#: Reduced mode (CI bench-smoke): run only the quick subset, skipping
#: the large-port variants whose runtime adds trajectory data but no
#: new coverage.  Full mode remains the default for local perf work.
_QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))

_BENCHES = list(iter_benches(quick=_QUICK))


@pytest.mark.parametrize("bench", _BENCHES, ids=[b.name for b in _BENCHES])
def test_bench(benchmark, bench):
    benchmark.group = bench.group
    fn = bench.make()
    result = benchmark(fn)
    if bench.check is not None:
        assert bench.check(result), \
            f"bench {bench.name} failed its sanity check"
