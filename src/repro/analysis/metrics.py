"""Traffic metrics: latency percentiles, jitter, throughput.

These are the measurements behind E4 (latency/jitter of VOIP-class
traffic) and the generic quality numbers every experiment reports.

The heavy kernels come in two shapes.  The scalar per-sample loops are
preserved verbatim in :mod:`repro.analysis.reference` as executable
specs; the production functions here accept NumPy arrays (PacketLog
columns pass through without copies) and vectorize once the input is
large enough for the array machinery to pay for itself.  Below the
dispatch threshold the scalar spec runs directly, so small-stream
results — everything the quick experiments report — are bit-identical
to the historical code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.reference import reference_interarrival_jitter_ps
from repro.net.packet import Packet
from repro.sim.time import SECONDS, format_time

ArrayLike = Union[Sequence[float], np.ndarray]

#: Inputs shorter than this run the scalar spec (bit-equal to the
#: historical loop); longer inputs take the vectorized closed form,
#: which matches to ~1e-12 relative (fuzz-tested) — far below the
#: picosecond rounding every report applies.
JITTER_VECTOR_MIN = 4096

#: Evaluating the jitter recurrence in closed form uses powers of
#: 15/16; blocks keep the smallest power around 0.9375^2048 ≈ 1e-58,
#: comfortably inside float64 range.
_JITTER_BLOCK = 2048


def percentile(values: ArrayLike, q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation.

    Returns 0.0 for an empty sequence — experiments treat "no packets"
    as a degenerate-but-reportable outcome, not an error.
    """
    if len(values) == 0:
        return 0.0
    return float(np.percentile(_as_float_array(values), q))


def percentiles(values: ArrayLike,
                qs: Sequence[float]) -> Tuple[float, ...]:
    """Several percentiles of one population, converted exactly once.

    Bit-identical to calling :func:`percentile` per quantile (NumPy
    partitions the same data and interpolates with the same formula),
    but the input is converted to a float64 array a single time — an
    ndarray of the right dtype passes through with no copy at all.
    Returns zeros for an empty sequence, like :func:`percentile`.
    """
    if len(values) == 0:
        return tuple(0.0 for __ in qs)
    result = np.percentile(_as_float_array(values), list(qs))
    return tuple(float(v) for v in result)


def interarrival_jitter_ps(arrival_times_ps: ArrayLike,
                           period_ps: int) -> float:
    """RFC 3550-style smoothed interarrival jitter, in picoseconds.

    For a nominally periodic stream (period ``period_ps``), jitter is
    the running average of ``|deviation of interarrival from period|``
    with gain 1/16, exactly as RTP receivers compute it.  This is the
    right measure for the paper's VOIP/gaming argument.

    Streams shorter than :data:`JITTER_VECTOR_MIN` evaluate the literal
    recurrence (see :func:`reference_interarrival_jitter_ps`); longer
    streams evaluate it in closed form over NumPy arrays: with
    ``r = 15/16`` the recurrence telescopes to
    ``J_n = J_0 r^n + (1/16) Σ d_k r^{n-k}``, computed blockwise so the
    powers stay well-scaled.
    """
    n = len(arrival_times_ps)
    if n < 2:
        return 0.0
    if n < JITTER_VECTOR_MIN:
        if isinstance(arrival_times_ps, np.ndarray):
            arrival_times_ps = arrival_times_ps.tolist()
        return reference_interarrival_jitter_ps(arrival_times_ps,
                                                period_ps)
    arrivals = np.asarray(arrival_times_ps, dtype=np.int64)
    deviations = np.abs(np.diff(arrivals) - period_ps).astype(np.float64)
    ratio = 15.0 / 16.0
    jitter = 0.0
    for start in range(0, deviations.size, _JITTER_BLOCK):
        block = deviations[start:start + _JITTER_BLOCK]
        # Descending powers r^{m-1} .. r^0 weight older deviations less.
        powers = np.power(ratio, np.arange(block.size - 1, -1, -1,
                                           dtype=np.float64))
        jitter = (jitter * ratio ** block.size
                  + float(block @ powers) / 16.0)
    return jitter


def latency_std_ps(latencies_ps: ArrayLike) -> float:
    """Standard deviation of latency — the coarse jitter measure."""
    if len(latencies_ps) < 2:
        return 0.0
    return float(np.std(_as_float_array(latencies_ps)))


@dataclass(frozen=True)
class LatencySummary:
    """Latency distribution of a packet population, in picoseconds."""

    count: int
    mean_ps: float
    p50_ps: float
    p95_ps: float
    p99_ps: float
    max_ps: float
    std_ps: float

    def row(self) -> List[str]:
        """Human-readable table row (count, mean, p50, p99, max, std)."""
        return [
            str(self.count),
            format_time(round(self.mean_ps)),
            format_time(round(self.p50_ps)),
            format_time(round(self.p99_ps)),
            format_time(round(self.max_ps)),
            format_time(round(self.std_ps)),
        ]


def latency_summary_from_arrays(latencies_ps: ArrayLike) -> LatencySummary:
    """Summarise an already-extracted latency population.

    This is the columnar entry point: hand it a PacketLog latency
    column (or any slice of one) and no packet objects are touched.
    The float64 array it reduces holds the same values in the same
    order as the reference path's list conversion, so every statistic
    is bit-identical.
    """
    if len(latencies_ps) == 0:
        return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    array = _as_float_array(latencies_ps)
    p50, p95, p99 = percentiles(array, (50, 95, 99))
    return LatencySummary(
        count=int(array.size),
        mean_ps=float(array.mean()),
        p50_ps=p50,
        p95_ps=p95,
        p99_ps=p99,
        max_ps=float(array.max()),
        std_ps=float(array.std()),
    )


def latency_summary(packets: Iterable[Packet],
                    priority: Optional[int] = None) -> LatencySummary:
    """Summarise delivered-packet latency, optionally filtered by priority."""
    latencies = [
        p.latency_ps for p in packets
        if p.latency_ps is not None
        and (priority is None or p.priority == priority)
    ]
    return latency_summary_from_arrays(latencies)


def throughput_bps(delivered_bytes: int, duration_ps: int) -> float:
    """Achieved goodput over a window."""
    if duration_ps <= 0:
        return 0.0
    return delivered_bytes * 8 * SECONDS / duration_ps


def utilisation(delivered_bytes: int, duration_ps: int,
                capacity_bps: float) -> float:
    """Goodput as a fraction of ``capacity_bps``."""
    if capacity_bps <= 0 or duration_ps <= 0:
        return 0.0
    return min(1.0, throughput_bps(delivered_bytes, duration_ps)
               / capacity_bps)


def _as_float_array(values: ArrayLike) -> np.ndarray:
    """``values`` as float64, without copying an already-float64 array."""
    if isinstance(values, np.ndarray) and values.dtype == np.float64:
        return values
    return np.asarray(values, dtype=np.float64)


__all__ = [
    "percentile",
    "percentiles",
    "interarrival_jitter_ps",
    "JITTER_VECTOR_MIN",
    "latency_std_ps",
    "LatencySummary",
    "latency_summary",
    "latency_summary_from_arrays",
    "throughput_bps",
    "utilisation",
]
