"""Solstice-style hybrid scheduling (after Liu et al., CoNEXT 2015).

Solstice is the natural "novel scheduling logic" a user of the paper's
framework would prototype: it explicitly co-schedules the OCS and the
EPS.  The algorithm exploits the sparsity and skew of real data-center
demand:

1. **Quickstuff** the demand matrix to equal row/column sums.
2. Repeatedly pick a threshold ``t`` (largest power-of-two fraction of
   the max entry), find a perfect matching on entries ≥ ``t``, and peel
   a slice of duration proportional to ``t``.  Big flows get long
   circuit slots; each extra matching costs one reconfiguration
   blackout ``delta``.
3. Stop when the next slice would be shorter than the blackout is worth
   (``min_slice_factor * delta``) or a matching budget is hit; whatever
   remains goes to the EPS as residue.

The result is a short schedule of long slots — far fewer
reconfigurations than raw BvN for skewed demand, at the cost of pushing
a small residue onto the packet switch.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.schedulers.base import Scheduler, ScheduleResult
from repro.schedulers.bipartite import perfect_matching_on_support
from repro.schedulers.bvn import stuff_matrix
from repro.schedulers.matching import Matching
from repro.sim.errors import SchedulingError
from repro.sim.time import GIGABIT, SECONDS


class SolsticeScheduler(Scheduler):
    """Threshold-peeling hybrid scheduler.

    Parameters
    ----------
    n_ports:
        Port count.
    link_rate_bps:
        Converts sliced bytes into hold picoseconds.
    reconfig_ps:
        The OCS blackout ``delta``; slices shorter than
        ``min_slice_factor * delta`` are not worth a reconfiguration.
    min_slice_factor:
        How many blackouts a slice must be worth (Solstice's
        "efficiency knob"; 1.0 ≈ break-even).
    max_matchings:
        Hard cap on schedule length.
    """

    name = "solstice"

    def __init__(self, n_ports: int, link_rate_bps: float = 10 * GIGABIT,
                 reconfig_ps: int = 0, min_slice_factor: float = 1.0,
                 max_matchings: Optional[int] = None) -> None:
        super().__init__(n_ports)
        if link_rate_bps <= 0:
            raise SchedulingError("link rate must be positive")
        if min_slice_factor < 0:
            raise SchedulingError("min_slice_factor must be >= 0")
        self.link_rate_bps = link_rate_bps
        self.reconfig_ps = reconfig_ps
        self.min_slice_factor = min_slice_factor
        self.max_matchings = max_matchings

    def _bytes_to_hold_ps(self, nbytes: float) -> int:
        return round(nbytes * 8 * SECONDS / self.link_rate_bps)

    def _min_slice_bytes(self) -> float:
        """Smallest slice (bytes) worth one reconfiguration blackout."""
        blackout_bytes = (self.reconfig_ps * self.link_rate_bps
                          / (8 * SECONDS))
        return self.min_slice_factor * blackout_bytes

    def compute(self, demand: np.ndarray) -> ScheduleResult:
        return self._schedule(self._check_demand(demand))

    def compute_trusted(self, demand: np.ndarray) -> ScheduleResult:
        """Validation-free entry; see the base-class contract.

        The peeling arithmetic is float; integer demand (the cell
        fabric's VOQ counts) is widened here so both paths run on the
        exact float64 matrix :meth:`compute` would.
        """
        return self._schedule(np.asarray(demand, dtype=np.float64))

    def _schedule(self, demand: np.ndarray) -> ScheduleResult:
        n = self.n_ports
        ports = np.arange(n)
        work = stuff_matrix(demand)
        plan: List[Tuple[Matching, int]] = []
        served = np.zeros_like(demand)
        min_slice = max(self._min_slice_bytes(), 1.0)
        iterations = 0
        max_entry = float(work.max())
        if max_entry > 0:
            threshold = 2.0 ** np.floor(np.log2(max_entry))
        else:
            threshold = 0.0
        while threshold >= min_slice:
            if (self.max_matchings is not None
                    and len(plan) >= self.max_matchings):
                break
            iterations += 1
            support = work >= threshold
            match = perfect_matching_on_support(support)
            if match is None:
                threshold /= 2.0
                continue
            # Slice duration: the threshold itself (Solstice peels in
            # power-of-two slabs so later thresholds stay aligned).
            slice_bytes = threshold
            matched = np.asarray(match, dtype=np.int64)
            real = demand[ports, matched] - served[ports, matched] > 0
            work[ports, matched] -= slice_bytes
            if real.any():
                hold_ps = self._bytes_to_hold_ps(slice_bytes)
                real_src = ports[real]
                real_dst = matched[real]
                plan.append((Matching.from_pairs(
                    n, zip(real_src.tolist(), real_dst.tolist())), hold_ps))
                served[real_src, real_dst] += slice_bytes
        residue = np.maximum(demand - served, 0.0)
        if not plan:
            plan = [(Matching.empty(n), 0)]
        self.last_stats = {"iterations": iterations, "matchings": len(plan)}
        return ScheduleResult(matchings=plan, eps_residue=residue)


__all__ = ["SolsticeScheduler"]
