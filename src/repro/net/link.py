"""Point-to-point link with serialisation and propagation delay.

The link is the only place in the model where bytes turn into time.  It
enforces FIFO ordering and non-overlapping serialisation: a packet
begins transmitting at ``max(now, previous packet's finish)``, occupies
the wire for ``wire_size/rate``, then arrives at the sink after the
propagation delay.

This matches the paper's accounting: propagation delay between host and
switch is one of the latency components that makes *software* scheduling
slow (§2), so it must be a first-class parameter.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, List, Optional

import numpy as np

from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.errors import ConfigurationError, SimulationError
from repro.sim.time import frame_tx_time_ps
from repro.sim.trace import Counter


class Link:
    """Unidirectional link.

    Parameters
    ----------
    sim:
        The simulator that owns time.
    name:
        Used in traces and error messages.
    rate_bps:
        Line rate in bits per second.
    propagation_ps:
        One-way propagation delay in picoseconds.  Intra-rack copper or
        fibre runs are a few metres: ~5 ns/m, so defaults elsewhere use
        tens of nanoseconds.
    sink:
        Callable invoked with each packet on arrival.  May be replaced
        after construction via :meth:`connect` (lets topologies wire
        rings of components without ordering headaches).
    """

    def __init__(self, sim: Simulator, name: str, rate_bps: float,
                 propagation_ps: int = 0,
                 sink: Optional[Callable[[Packet], None]] = None) -> None:
        if rate_bps <= 0:
            raise ConfigurationError(f"link {name}: rate must be positive")
        if propagation_ps < 0:
            raise ConfigurationError(
                f"link {name}: propagation must be non-negative")
        self.sim = sim
        self.name = name
        self.rate_bps = rate_bps
        self.propagation_ps = propagation_ps
        self._sink = sink
        self._free_at = 0
        self._down_until = 0
        self.accepted = Counter(f"{name}.accepted")
        self.delivered = Counter(f"{name}.delivered")
        self.fault_drops = Counter(f"{name}.fault_drops")
        self.busy_ps = 0
        # One label for the link's lifetime: send() schedules an event
        # per packet and must not allocate a fresh f-string each time.
        self._event_label = f"link:{name}"
        # Fast-lane state: eager delivery straight into a telemetry
        # sink, and pre-serialised future sends from chunked sources.
        self._eager_fn: Optional[Callable[[Packet, int], None]] = None
        self._eager_guard: Callable[[], bool] = _always
        self._unreliable = False
        self._committed_until = 0

    def connect(self, sink: Callable[[Packet], None]) -> None:
        """Set (or replace) the arrival sink."""
        self._sink = sink

    # -- fast-lane wiring ---------------------------------------------------------

    def set_eager_sink(self, fn: Callable[[Packet, int], None],
                       guard: Callable[[], bool] = None) -> None:
        """Deliver eagerly through ``fn(packet, arrival_ps)``.

        Valid only when the link's sink is a pure telemetry endpoint
        (nothing downstream reads simulator state at delivery time): the
        link then skips the per-packet delivery event and hands the
        packet over at *send* time together with its exact arrival
        instant.  ``guard`` is re-checked per packet; when it returns
        False (e.g. a delivery hook was installed) the link falls back
        to the event path.
        """
        self._eager_fn = fn
        self._eager_guard = guard if guard is not None else _always

    def clear_eager_sink(self) -> None:
        """Return to per-packet delivery events (instrumentation hook).

        Diagnostic wrappers that re-point :meth:`connect` (e.g. the
        path tracer) need every delivery to flow through the sink at
        true arrival time; clearing the eager sink restores that.
        """
        self._eager_fn = None
        self._eager_guard = _always

    def mark_unreliable(self) -> None:
        """Declare that a fault injector may take this link down.

        Future-committing fast paths (:meth:`send_presend`,
        :meth:`send_at`) are disabled: they could otherwise commit
        transmissions the fault would have dropped.
        """
        self._unreliable = True

    def can_presend(self) -> bool:
        """True when committing future sends on this link is exact."""
        return not self._unreliable and self._down_until == 0

    def send(self, packet: Packet) -> int:
        """Queue ``packet`` for transmission; returns its arrival time.

        The link has no internal buffer limit: back-pressure is the
        caller's job (hosts and switch logic gate what they hand to the
        wire).  Serialisation slots never overlap.
        """
        if self._sink is None:
            raise ConfigurationError(f"link {self.name} has no sink connected")
        if self.sim.now < self._down_until:
            # The wire is dark (fault injection): the frame is lost at
            # the transmitter, as a real PHY-down event would lose it.
            self.fault_drops.add(1, packet.size)
            return self._down_until
        self.accepted.add(1, packet.size)
        start = max(self.sim.now, self._free_at)
        tx_ps = frame_tx_time_ps(packet.size, self.rate_bps)
        self._free_at = start + tx_ps
        self.busy_ps += tx_ps
        arrival = self._free_at + self.propagation_ps
        if self._eager_fn is not None:
            horizon = self.sim.run_until
            if (horizon is not None and arrival <= horizon
                    and self._eager_guard()):
                # Telemetry-sink fast lane: the arrival is fully
                # determined now, so the delivery event is pure
                # overhead.  (Past the horizon the event would never
                # have fired; scheduling it keeps that exact.)
                self.delivered.add(1, packet.size)
                self._eager_fn(packet, arrival)
                return arrival
        sink = self._sink

        def deliver() -> None:
            self.delivered.add(1, packet.size)
            sink(packet)

        self.sim.at(arrival, deliver, label=self._event_label)
        return arrival

    def send_at(self, packet: Packet, when: int) -> int:
        """Commit a send known to happen at future time ``when``.

        Exactly :meth:`send` as-if called at ``when``, evaluated early.
        Caller contract (checked): the link is reliable (no fault
        injector armed), ``when`` is within the current run horizon,
        and every earlier send on this link has already been committed
        (callers hand the link monotonically non-decreasing times).
        """
        if self._unreliable or self.sim.now < self._down_until:
            raise SimulationError(
                f"link {self.name}: send_at on an unreliable link")
        if self._sink is None:
            raise ConfigurationError(f"link {self.name} has no sink connected")
        if when > self._committed_until:
            self._committed_until = when
        self.accepted.add(1, packet.size)
        start = max(when, self._free_at)
        tx_ps = frame_tx_time_ps(packet.size, self.rate_bps)
        self._free_at = start + tx_ps
        self.busy_ps += tx_ps
        arrival = self._free_at + self.propagation_ps
        if self._eager_fn is not None:
            horizon = self.sim.run_until
            if (horizon is not None and arrival <= horizon
                    and self._eager_guard()):
                self.delivered.add(1, packet.size)
                self._eager_fn(packet, arrival)
                return arrival
        self.sim.at(arrival, partial(self._deliver_one, packet),
                    label=self._event_label)
        return arrival

    def send_presend(self, packets: List[Packet], times: List[int]) -> None:
        """Commit a chunk of future sends (``times`` ascending, >= now).

        Serialisation is computed for the whole chunk at once —
        ``start_i = max(t_i, free_{i-1})`` evaluated as a prefix-max
        over int64 arrays — and one arrival event is scheduled per
        packet (the ingress consumes packets at exact arrival instants;
        only the per-packet *source* event is gone).  Counters update
        in bulk.
        """
        if self._unreliable or self._down_until > 0:
            raise SimulationError(
                f"link {self.name}: presend on an unreliable link")
        if self._sink is None:
            raise ConfigurationError(f"link {self.name} has no sink connected")
        n = len(packets)
        if n == 0:
            return
        self._committed_until = max(self._committed_until, times[-1])
        sizes = [p.size for p in packets]
        total = sum(sizes)
        self.accepted.add(n, total)
        first_size = sizes[0]
        if n >= 8 and sizes.count(first_size) == n:
            # Constant frame size: f_i = max(t_i, f_{i-1}) + tx has the
            # closed form f_i = (i+1)*tx + running_max(t_i - i*tx).
            tx_ps = frame_tx_time_ps(first_size, self.rate_bps)
            t_arr = np.asarray(times, dtype=np.int64)
            offsets = np.arange(n, dtype=np.int64) * tx_ps
            slack = np.maximum.accumulate(t_arr - offsets)
            np.maximum(slack, self._free_at, out=slack)
            frees = slack + offsets + tx_ps
            self._free_at = int(frees[-1])
            self.busy_ps += n * tx_ps
            arrivals = (frees + self.propagation_ps).tolist()
        else:
            free = self._free_at
            rate = self.rate_bps
            busy = 0
            arrivals = []
            for size, t in zip(sizes, times):
                start = t if t > free else free
                tx_ps = frame_tx_time_ps(size, rate)
                free = start + tx_ps
                busy += tx_ps
                arrivals.append(free + self.propagation_ps)
            self._free_at = free
            self.busy_ps += busy
        if self._eager_fn is not None:
            horizon = self.sim.run_until
            if horizon is not None and self._eager_guard():
                eager = self._eager_fn
                delivered = 0
                dbytes = 0
                for packet, arrival in zip(packets, arrivals):
                    if arrival <= horizon:
                        delivered += 1
                        dbytes += packet.size
                        eager(packet, arrival)
                    else:
                        # Beyond the horizon the delivery event would
                        # never have fired; schedule it so that stays
                        # exact under any later run extension.
                        self.sim.at(arrival,
                                    partial(self._deliver_one, packet),
                                    label=self._event_label)
                self.delivered.add(delivered, dbytes)
                return
        at = self.sim.at
        deliver = self._deliver_one
        label = self._event_label
        for packet, arrival in zip(packets, arrivals):
            at(arrival, partial(deliver, packet), label=label)

    def _deliver_one(self, packet: Packet) -> None:
        self.delivered.add(1, packet.size)
        self._sink(packet)

    @property
    def free_at(self) -> int:
        """Earliest time the wire is idle again (== now when idle)."""
        return max(self._free_at, self.sim.now)

    @property
    def in_flight(self) -> int:
        """Packets accepted but not yet delivered (queued or on wire)."""
        return self.accepted.count - self.delivered.count

    def fail_until(self, up_at_ps: int) -> None:
        """Take the link down until ``up_at_ps`` (fault injection).

        Frames offered while down are dropped and counted in
        :attr:`fault_drops`.  Repeated calls extend the outage.

        Injectors are expected to :meth:`mark_unreliable` the link at
        arm time; failing a link that already committed future sends
        through the fast lane cannot be made consistent retroactively,
        so it raises instead of silently diverging.
        """
        if self.sim.now < self._committed_until:
            raise SimulationError(
                f"link {self.name}: fail_until at {self.sim.now}ps but "
                f"future sends are committed through "
                f"{self._committed_until}ps; call mark_unreliable() "
                "before the run (fault injectors do) so the fast lane "
                "stays off this link")
        self._unreliable = True
        self._down_until = max(self._down_until, up_at_ps)

    @property
    def is_down(self) -> bool:
        """True while a fault outage is in effect."""
        return self.sim.now < self._down_until

    def utilisation(self, since_ps: int = 0) -> float:
        """Fraction of wall time the wire was busy since ``since_ps``."""
        window = self.sim.now - since_ps
        if window <= 0:
            return 0.0
        return min(1.0, self.busy_ps / window)


def _always() -> bool:
    return True


__all__ = ["Link"]
