"""Content-addressed on-disk cache of experiment reports.

Layout::

    <root>/
      <experiment_id>/
        <spec key>.json     # {"format", "spec", "digest", "report"}

The file name is the spec's content hash, so a cache directory can be
shared between branches, machines and CI shards without coordination:
a hit is valid by construction (same spec ⇒ same report, because entry
points are pure), and any change to spec semantics bumps
``SPEC_FORMAT`` which changes every key.

``digest`` is the SHA-256 of the report payload's canonical JSON.  It
exists because cache entries now travel (rsync'd cache dirs, the
fleet's ``cache-lookup`` protocol frames), and a truncated or
bit-flipped payload must be *detected* rather than served: a mismatch
reads as a miss, the entry is evicted, and the spec simply re-executes.

One deliberate wrinkle: reports pass through JSON, so tuples inside
``ExperimentReport.data`` come back as lists and non-string dict keys
come back as strings.  Canonical comparisons (tests, ``--json-out``)
therefore go through :func:`repro.runner.spec.jsonable` on both sides.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.experiments.base import ExperimentReport
from repro.runner.spec import RunSpec, SPEC_FORMAT, jsonable


def report_to_payload(report: ExperimentReport) -> dict:
    """An :class:`ExperimentReport` as plain JSON types."""
    return {
        "experiment_id": report.experiment_id,
        "title": report.title,
        "tables": list(report.tables),
        "data": jsonable(report.data),
        "expectations": list(report.expectations),
        "warnings": list(report.warnings),
    }


def report_from_payload(payload: dict) -> ExperimentReport:
    """Inverse of :func:`report_to_payload`."""
    return ExperimentReport(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        tables=list(payload["tables"]),
        data=dict(payload["data"]),
        expectations=list(payload["expectations"]),
        warnings=list(payload.get("warnings", [])),
    )


def payload_digest(report_payload: dict) -> str:
    """SHA-256 over the canonical JSON of a report payload."""
    text = json.dumps(report_payload, sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0


class ResultCache:
    """Spec-hash → report store under one root directory."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.stats = CacheStats()

    def path_for(self, spec: RunSpec) -> Path:
        # Scenario ids contain ':'; keep directory names portable.
        return (self.root / spec.experiment_id.replace(":", "-")
                / f"{spec.key()}.json")

    def load(self, spec: RunSpec) -> Optional[ExperimentReport]:
        """The cached report, or ``None`` on miss/corruption."""
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except ValueError:
            # Unparseable bytes can only be torn/corrupt — drop them so
            # the next writer starts from a clean slate.
            self._evict(path)
            self.stats.misses += 1
            return None
        except OSError:
            self.stats.misses += 1
            return None
        # Defence in depth: the name already encodes spec + format,
        # but a truncated or hand-edited file must read as a miss.
        if (payload.get("format") != SPEC_FORMAT
                or payload.get("spec") != spec.canonical()):
            self.stats.misses += 1
            return None
        report_payload = payload.get("report")
        if (not isinstance(report_payload, dict)
                or payload.get("digest") != payload_digest(report_payload)):
            # Bit-flipped or truncated report body (or a pre-digest
            # entry): never serve it — evict and re-execute.
            self._evict(path)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return report_from_payload(report_payload)

    def _evict(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            return
        self.stats.evictions += 1

    def store(self, spec: RunSpec, report: ExperimentReport) -> Path:
        """Persist ``report`` atomically; returns the cache path."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        report_payload = report_to_payload(report)
        payload = {
            "format": SPEC_FORMAT,
            "spec": spec.canonical(),
            "digest": payload_digest(report_payload),
            "report": report_payload,
        }
        text = json.dumps(payload, sort_keys=True, indent=1)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(text + "\n", encoding="utf-8")
        os.replace(tmp, path)  # atomic: parallel writers can't tear
        self.stats.stores += 1
        return path

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))


__all__ = ["ResultCache", "CacheStats", "payload_digest",
           "report_to_payload", "report_from_payload"]
