"""Discrete-event simulation substrate.

Everything in :mod:`repro` that advances simulated time is built on this
package.  The design goals, in order:

1. **Determinism.**  Simulated time is an integer number of picoseconds
   (:mod:`repro.sim.time`), the event queue breaks ties with a strictly
   increasing sequence number (:mod:`repro.sim.events`), and every source
   of randomness is a named, independently-seeded stream
   (:mod:`repro.sim.random`).  Two runs with the same seed produce
   byte-identical results.
2. **Speed.**  The hot loop is a plain ``heapq`` pop and a callback; no
   generators, no coroutine scheduling, no per-event allocation beyond
   the event tuple itself.
3. **Observability.**  :mod:`repro.sim.trace` provides counters and
   time-series probes that experiments attach without touching model
   code.
"""

from repro.sim.engine import Simulator
from repro.sim.events import Event, EventQueue
from repro.sim.random import RandomStreams
from repro.sim.time import (
    GIGABIT,
    KILOBYTE,
    MEGABYTE,
    GIGABYTE,
    MICROSECONDS,
    MILLISECONDS,
    NANOSECONDS,
    PICOSECONDS,
    SECONDS,
    format_time,
    parse_time,
    rate_to_ps_per_byte,
    transmission_time_ps,
)
from repro.sim.trace import Counter, Probe, TimeSeries

__all__ = [
    "Simulator",
    "Event",
    "EventQueue",
    "RandomStreams",
    "Counter",
    "Probe",
    "TimeSeries",
    "PICOSECONDS",
    "NANOSECONDS",
    "MICROSECONDS",
    "MILLISECONDS",
    "SECONDS",
    "KILOBYTE",
    "MEGABYTE",
    "GIGABYTE",
    "GIGABIT",
    "format_time",
    "parse_time",
    "rate_to_ps_per_byte",
    "transmission_time_ps",
]
