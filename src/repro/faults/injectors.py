"""Fault injectors (see package docstring for the catalogue)."""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.core.scheduling import SchedulingLogic
from repro.net.link import Link
from repro.schedulers.matching import Matching
from repro.sim.engine import Simulator
from repro.sim.errors import ConfigurationError
from repro.switches.ocs import OpticalCircuitSwitch


class LinkFlapInjector:
    """Takes a link down for ``duration_ps`` at each scheduled instant."""

    def __init__(self, sim: Simulator, link: Link,
                 flaps: List[Tuple[int, int]]) -> None:
        """``flaps`` is a list of (start_ps, duration_ps) windows."""
        self.sim = sim
        self.link = link
        self.executed: List[Tuple[int, int]] = []
        # Arm-time declaration: future-committing fast paths (chunk
        # pre-sends, eager transit) must stay off a link that may fail.
        link.mark_unreliable()
        for start_ps, duration_ps in flaps:
            if duration_ps <= 0:
                raise ConfigurationError("flap duration must be > 0")

            def flap(start=start_ps, duration=duration_ps) -> None:
                self.link.fail_until(self.sim.now + duration)
                self.executed.append((start, duration))

            sim.at(start_ps, flap, label=f"fault:flap:{link.name}")


class SchedulerStallInjector:
    """Freezes the scheduling loop for a window (control-plane pause).

    Implemented through :meth:`SchedulingLogic.stall_until`: epochs that
    would begin during the stall are deferred to its end.  Grants
    already issued keep draining — exactly the behaviour of a fabric
    whose controller stops responding.
    """

    def __init__(self, sim: Simulator, scheduling: SchedulingLogic,
                 start_ps: int, duration_ps: int) -> None:
        if duration_ps <= 0:
            raise ConfigurationError("stall duration must be > 0")
        self.sim = sim
        self.scheduling = scheduling
        self.start_ps = start_ps
        self.duration_ps = duration_ps
        self.fired = False

        def stall() -> None:
            self.scheduling.stall_until(self.sim.now + duration_ps)
            self.fired = True

        sim.at(start_ps, stall, label="fault:sched-stall")


class ConfigCorruptionInjector:
    """Applies one random (wrong) matching to the OCS at ``at_ps``.

    Models a corrupted grant matrix reaching the switching logic: the
    OCS obediently reconfigures, live traffic misdirects or goes dark,
    and the next scheduling epoch repairs the damage.  The corrupted
    matching is recorded for correlation.
    """

    def __init__(self, sim: Simulator, ocs: OpticalCircuitSwitch,
                 at_ps: int, rng: Optional[random.Random] = None) -> None:
        self.sim = sim
        self.ocs = ocs
        self.rng = rng or random.Random(0)
        self.applied: Optional[Matching] = None
        # The corruption reconfigures at an arbitrary instant; keep the
        # future-committing fast paths off this device.
        ocs.mark_unstable()

        def corrupt() -> None:
            outputs = list(range(ocs.n_ports))
            self.rng.shuffle(outputs)
            self.applied = Matching(outputs)
            ocs.configure(self.applied)

        sim.at(at_ps, corrupt, label="fault:ocs-corrupt")


__all__ = [
    "LinkFlapInjector",
    "SchedulerStallInjector",
    "ConfigCorruptionInjector",
]
