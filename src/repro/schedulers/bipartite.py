"""Bipartite maximum-cardinality matching (Hopcroft–Karp).

Shared combinatorial engine for the decomposition schedulers:
Birkhoff–von Neumann needs a *perfect* matching on the positive support
of a stuffed matrix, Solstice needs one on a thresholded support.

Implemented from scratch (BFS layering + DFS augmentation) rather than
delegating to networkx: the hot loops here run once per decomposition
term and keeping the code local makes the cycle-cost accounting in
:mod:`repro.hwmodel` honest about what hardware would implement.

Complexity O(E·sqrt(V)); for the n ≤ 256 matrices in this project it is
effectively instant.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Sequence

import numpy as np

#: Sentinel distance for unmatched/unreachable vertices in BFS.
_INFINITY = float("inf")


def hopcroft_karp(adjacency: Sequence[Sequence[int]],
                  n_right: int) -> List[Optional[int]]:
    """Maximum-cardinality matching of a bipartite graph.

    Parameters
    ----------
    adjacency:
        ``adjacency[u]`` lists the right-vertices adjacent to left
        vertex ``u``.
    n_right:
        Number of right vertices.

    Returns
    -------
    ``match_of[u]`` — the right vertex matched to left vertex ``u``, or
    ``None`` when ``u`` is unmatched.
    """
    n_left = len(adjacency)
    match_left: List[Optional[int]] = [None] * n_left
    match_right: List[Optional[int]] = [None] * n_right
    dist: List[float] = [0.0] * n_left

    def bfs() -> bool:
        """Layer the graph from free left vertices; True if an
        augmenting path exists."""
        queue = deque()
        for u in range(n_left):
            if match_left[u] is None:
                dist[u] = 0.0
                queue.append(u)
            else:
                dist[u] = _INFINITY
        found_free = False
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                partner = match_right[v]
                if partner is None:
                    found_free = True
                elif dist[partner] == _INFINITY:
                    dist[partner] = dist[u] + 1
                    queue.append(partner)
        return found_free

    def dfs(u: int) -> bool:
        """Try to extend an augmenting path from left vertex ``u``."""
        for v in adjacency[u]:
            partner = match_right[v]
            if partner is None or (dist[partner] == dist[u] + 1
                                   and dfs(partner)):
                match_left[u] = v
                match_right[v] = u
                return True
        dist[u] = _INFINITY
        return False

    while bfs():
        for u in range(n_left):
            if match_left[u] is None:
                dfs(u)
    return match_left


def perfect_matching_on_support(support) -> Optional[List[int]]:
    """Perfect matching on the True entries of a square boolean matrix.

    ``support`` may be a nested sequence or a boolean ndarray.  Returns
    ``match[i] = j`` covering every row and column, or ``None`` when no
    perfect matching exists (Hall violation).
    """
    support = np.asarray(support, dtype=bool)
    n = support.shape[0]
    # Ascending neighbour order, same as the list comprehension this
    # replaces — Hopcroft-Karp's DFS order (and thus the matching
    # returned) depends on it.
    adjacency = [np.nonzero(row)[0].tolist() for row in support]
    match = hopcroft_karp(adjacency, n)
    if any(m is None for m in match):
        return None
    return [m for m in match if m is not None]


__all__ = ["hopcroft_karp", "perfect_matching_on_support"]
