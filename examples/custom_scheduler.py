#!/usr/bin/env python3
"""Rapid prototyping: drop a *new* scheduling algorithm into the slot.

This is the paper's core pitch — §3: "users implement novel design in
the scheduling logic module" while the processing and switching
infrastructure stays fixed.  Here we prototype an "oldest-cell-first"
greedy matcher (serve the most-starved VOQs first), register it, and
evaluate it against iSLIP two ways:

1. on the slotted cell fabric (throughput under adversarial load), and
2. inside the full packet-level framework (end-to-end latency),

without touching a line of infrastructure code.

    python examples/custom_scheduler.py
"""

from typing import List, Optional

import numpy as np

from repro import (
    FrameworkConfig,
    HybridSwitchFramework,
    Matching,
    ScheduleResult,
    Scheduler,
    register_scheduler,
)
from repro.fabric.cellsim import CellFabricSim
from repro.fabric.workloads import diagonal_rates
from repro.schedulers.islip import IslipScheduler
from repro.sim.time import MICROSECONDS, MILLISECONDS, format_time
from repro.traffic.patterns import UniformDestination
from repro.traffic.sources import PoissonSource


class OldestCellFirst(Scheduler):
    """Greedy matcher on queue *age* proxied by queue depth ranking.

    Visits (input, output) pairs in decreasing backlog and matches
    greedily — like greedy MWM, but demonstrates that any policy with
    the ``compute`` signature plugs in.  State from previous epochs
    (``self._age``) shows schedulers may keep history, exactly as a
    hardware block would keep registers.
    """

    name = "oldest-cell-first"

    def __init__(self, n_ports: int) -> None:
        super().__init__(n_ports)
        self._age = np.zeros((n_ports, n_ports))

    def compute(self, demand: np.ndarray) -> ScheduleResult:
        demand = self._check_demand(demand)
        # Age accumulates wherever demand waits, resets when it clears.
        self._age = np.where(demand > 0, self._age + 1, 0.0)
        score = demand * (1.0 + 0.1 * self._age)
        src_idx, dst_idx = np.nonzero(score > 0)
        order = np.argsort(-score[src_idx, dst_idx], kind="stable")
        out_of: List[Optional[int]] = [None] * self.n_ports
        used = [False] * self.n_ports
        for k in order.tolist():
            i, j = int(src_idx[k]), int(dst_idx[k])
            if out_of[i] is None and not used[j]:
                out_of[i] = j
                used[j] = True
        self.last_stats = {"iterations": 1, "matchings": 1}
        return ScheduleResult(matchings=[(Matching(out_of), 0)])


def fabric_comparison() -> None:
    print("== cell fabric, diagonal load 0.9, 16 ports ==")
    rates = diagonal_rates(16, 0.9)
    for name, scheduler in [
        ("islip-1", IslipScheduler(16, iterations=1)),
        ("oldest-cell-first", OldestCellFirst(16)),
    ]:
        stats = CellFabricSim(scheduler, rates, seed=3).run(
            slots=4_000, warmup=500)
        print(f"  {name:20s} throughput={stats.throughput:.3f} "
              f"mean delay={stats.mean_delay_slots:.1f} slots")


def framework_comparison() -> None:
    print("== full framework, 8 ports, Poisson 0.4 load ==")
    for name in ("islip", "oldest-cell-first"):
        config = FrameworkConfig(
            n_ports=8, switching_time_ps=1 * MICROSECONDS,
            scheduler=name, timing_preset="netfpga_sume",
            default_slot_ps=10 * MICROSECONDS, seed=7)
        fw = HybridSwitchFramework(config)
        for host in fw.hosts:
            PoissonSource(
                fw.sim, host, rate_bps=0.4 * config.port_rate_bps,
                chooser=UniformDestination(
                    8, host.host_id,
                    fw.sim.streams.stream(f"d{host.host_id}")),
                rng=fw.sim.streams.stream(f"s{host.host_id}"))
        result = fw.run(4 * MILLISECONDS)
        latency = result.latency()
        print(f"  {name:20s} utilisation={result.utilisation():.3f} "
              f"p99={format_time(round(latency.p99_ps))}")


def main() -> None:
    # One registration makes the new algorithm available everywhere —
    # framework configs, the CLI, benches.
    register_scheduler("oldest-cell-first",
                       lambda n_ports, **kw: OldestCellFirst(n_ports))
    fabric_comparison()
    framework_comparison()


if __name__ == "__main__":
    main()
