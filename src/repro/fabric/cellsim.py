"""The slotted cell simulator.

Per slot:

1. **Arrivals** — Bernoulli per (input, output) pair from the rate
   matrix (at most one cell per pair per slot, the standard model).
2. **Schedule** — the scheduler sees the VOQ *cell counts* as its
   demand matrix and returns one matching.
3. **Service** — one cell departs per matched backlogged pair.

Delay is measured in slots from arrival to departure (FIFO within each
VOQ).  Throughput is departures per slot per port, normalised so 1.0
means every port was busy every slot.

The simulator is deliberately independent of :mod:`repro.sim` — cell
time is just a loop index; there is nothing event-driven about it.

Engines
-------

Two interchangeable inner loops produce **bit-identical**
:class:`FabricStats` for the same seed (the golden-equivalence tests in
``tests/test_fabric_vector.py`` hold them to that):

* ``"vector"`` (default) — batch-slot kernel: arrival randomness is
  drawn for whole slot chunks at once (numpy fills chunked draws from
  the same bit stream as per-slot draws, so the arrival pattern is
  unchanged), per-VOQ FIFO delay bookkeeping lives in one int64 ring
  buffer indexed with fancy indexing instead of n² Python deques, and
  schedulers are invoked through their validation-free
  :meth:`~repro.schedulers.base.Scheduler.compute_trusted` entry.
* ``"reference"`` — the original scalar loop, kept as the executable
  specification the vector kernel is checked against.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

import numpy as np

from repro.schedulers.base import Scheduler
from repro.sim.errors import ConfigurationError

#: Memory budget for one chunk of pre-drawn arrival randomness
#: (float64), which bounds the batch size at large port counts.
_CHUNK_BYTES = 8_000_000
#: Upper bound on slots per chunk regardless of port count.
_CHUNK_SLOTS = 1024
#: Initial per-VOQ ring-buffer capacity (doubles on demand).
_RING_START = 8


@dataclass(frozen=True)
class FabricStats:
    """Results of one cell-fabric run (measurement window only)."""

    slots: int
    n_ports: int
    arrivals: int
    departures: int
    #: Mean cell delay in slots (arrival slot → departure slot).
    mean_delay_slots: float
    #: Departures / (slots × ports): normalised throughput.
    throughput: float
    #: Offered load actually generated (arrivals / (slots × ports)).
    offered: float
    #: Cells still queued at the end of the window.
    backlog_cells: int
    #: Largest total queued cells observed.
    peak_backlog_cells: int

    @property
    def served_fraction(self) -> float:
        """Departures / arrivals within the window (≈1 when stable)."""
        return self.departures / self.arrivals if self.arrivals else 1.0


class CellFabricSim:
    """Fixed-slot input-queued switch driven by any Scheduler.

    Parameters
    ----------
    scheduler:
        Any :class:`~repro.schedulers.base.Scheduler`; its demand matrix
        is the live VOQ cell-count matrix.
    rates:
        n×n per-slot arrival probabilities (see
        :mod:`repro.fabric.workloads`).
    seed:
        Arrival randomness seed.
    engine:
        ``"vector"`` (default, batch-slot kernel) or ``"reference"``
        (scalar loop).  Both produce identical stats for the same seed;
        see the module docstring.
    """

    ENGINES = ("vector", "reference")

    def __init__(self, scheduler: Scheduler, rates: np.ndarray,
                 seed: int = 0, engine: str = "vector") -> None:
        rates = np.asarray(rates, dtype=np.float64)
        n = scheduler.n_ports
        if rates.shape != (n, n):
            raise ConfigurationError(
                f"rates shape {rates.shape} != scheduler ports ({n},{n})")
        if (rates < 0).any() or (rates > 1).any():
            raise ConfigurationError("rates must be probabilities in [0,1]")
        if np.diagonal(rates).any():
            raise ConfigurationError("rates must have a zero diagonal")
        if engine not in self.ENGINES:
            raise ConfigurationError(
                f"unknown engine {engine!r}; choose from {self.ENGINES}")
        self.scheduler = scheduler
        self.rates = rates
        self.n_ports = n
        self.engine = engine
        self._rng = np.random.default_rng(seed)
        self._counts = np.zeros((n, n), dtype=np.int64)
        if engine == "reference":
            self._arrival_slots: List[List[Optional[Deque[int]]]] = [
                [deque() if i != j else None for j in range(n)]
                for i in range(n)
            ]
        else:
            # Per-VOQ FIFO of arrival-slot numbers, stored as one ring
            # buffer: entry k of queue (i, j) lives at
            # ring[i, j, (head[i, j] + k) % capacity].
            self._ring = np.zeros((n, n, _RING_START), dtype=np.int64)
            self._ring_head = np.zeros((n, n), dtype=np.int64)
            self._ring_size = np.zeros((n, n), dtype=np.int64)

    def run(self, slots: int, warmup: int = 0) -> FabricStats:
        """Simulate ``warmup + slots`` slots; measure the last ``slots``.

        Warmup fills queues to steady state so delay/throughput are not
        biased by the empty start.
        """
        if slots < 1 or warmup < 0:
            raise ConfigurationError("slots >= 1, warmup >= 0 required")
        if self.engine == "reference":
            return self._run_reference(slots, warmup)
        return self._run_vector(slots, warmup)

    # -- reference engine (executable specification) ---------------------------

    def _run_reference(self, slots: int, warmup: int) -> FabricStats:
        n = self.n_ports
        arrivals = 0
        departures = 0
        delay_total = 0
        peak_backlog = 0
        for slot in range(warmup + slots):
            measuring = slot >= warmup
            # Arrivals: one Bernoulli draw per pair.
            draw = self._rng.random((n, n)) < self.rates
            if draw.any():
                src_idx, dst_idx = np.nonzero(draw)
                for src, dst in zip(src_idx.tolist(), dst_idx.tolist()):
                    self._counts[src, dst] += 1
                    queue = self._arrival_slots[src][dst]
                    assert queue is not None
                    queue.append(slot)
                if measuring:
                    arrivals += int(draw.sum())
            # Schedule on current occupancy.
            result = self.scheduler.compute(self._counts)
            matching = result.first
            # Serve one cell per matched backlogged pair.
            for src, dst in matching.pairs():
                if self._counts[src, dst] >= 1:
                    self._counts[src, dst] -= 1
                    queue = self._arrival_slots[src][dst]
                    assert queue is not None
                    arrived = queue.popleft()
                    if measuring:
                        departures += 1
                        delay_total += slot - arrived
            backlog = int(self._counts.sum())
            if measuring and backlog > peak_backlog:
                peak_backlog = backlog
        return self._stats(slots, arrivals, departures, delay_total,
                           peak_backlog)

    # -- vector engine ---------------------------------------------------------

    def _grow_ring(self, needed: int) -> None:
        """Double the ring capacity until ``needed`` cells fit per VOQ.

        Re-laid out so every queue starts at index 0 (one gather).
        """
        capacity = self._ring.shape[2]
        new_capacity = capacity
        while new_capacity < needed:
            new_capacity *= 2
        gather = (self._ring_head[:, :, None]
                  + np.arange(capacity)[None, None, :]) % capacity
        unrolled = np.take_along_axis(self._ring, gather, axis=2)
        self._ring = np.zeros(
            (self.n_ports, self.n_ports, new_capacity), dtype=np.int64)
        self._ring[:, :, :capacity] = unrolled
        self._ring_head[:] = 0

    def _run_vector(self, slots: int, warmup: int) -> FabricStats:
        n = self.n_ports
        counts = self._counts
        head = self._ring_head
        size = self._ring_size
        ring = self._ring
        capacity = ring.shape[2]
        ring_mask = capacity - 1  # capacity is always a power of two
        compute = self.scheduler.compute_trusted
        nonzero = np.nonzero
        total = warmup + slots
        chunk = max(1, min(total, _CHUNK_BYTES // (8 * n * n), _CHUNK_SLOTS))
        arrivals = 0
        departures = 0
        delay_total = 0
        backlog = int(counts.sum())
        peak_backlog = 0
        slot = 0
        while slot < total:
            span = min(chunk, total - slot)
            # One RNG call per chunk: numpy fills the (span, n, n) block
            # from the same bit stream as span successive (n, n) draws,
            # so arrivals are bit-identical to the reference engine.
            draw = self._rng.random((span, n, n)) < self.rates
            slot_idx, src_idx, dst_idx = nonzero(draw)
            bounds = np.searchsorted(slot_idx, np.arange(span + 1)).tolist()
            for k in range(span):
                measuring = slot >= warmup
                lo = bounds[k]
                hi = bounds[k + 1]
                if hi > lo:
                    src = src_idx[lo:hi]
                    dst = dst_idx[lo:hi]
                    queued = size[src, dst]
                    if int(queued.max()) >= capacity:
                        self._grow_ring(capacity + 1)
                        ring = self._ring
                        capacity = ring.shape[2]
                        ring_mask = capacity - 1
                        queued = size[src, dst]
                    counts[src, dst] += 1
                    ring[src, dst, (head[src, dst] + queued) & ring_mask] = slot
                    size[src, dst] += 1
                    backlog += hi - lo
                    if measuring:
                        arrivals += hi - lo
                # Schedule on current occupancy (validation skipped: the
                # kernel maintains the non-negative zero-diagonal
                # invariant itself).
                matching = compute(counts).first
                out_of = matching.as_array()
                matched_in = nonzero(out_of >= 0)[0]
                if matched_in.size:
                    matched_out = out_of[matched_in]
                    backlogged = counts[matched_in, matched_out] >= 1
                    served_in = matched_in[backlogged]
                    n_served = served_in.size
                    if n_served:
                        served_out = matched_out[backlogged]
                        counts[served_in, served_out] -= 1
                        at = head[served_in, served_out]
                        arrived = ring[served_in, served_out, at]
                        head[served_in, served_out] = (at + 1) & ring_mask
                        size[served_in, served_out] -= 1
                        backlog -= n_served
                        if measuring:
                            departures += n_served
                            delay_total += (n_served * slot
                                            - int(arrived.sum()))
                if measuring and backlog > peak_backlog:
                    peak_backlog = backlog
                slot += 1
        return self._stats(slots, arrivals, departures, delay_total,
                           peak_backlog)

    # -- shared ----------------------------------------------------------------

    def _stats(self, slots: int, arrivals: int, departures: int,
               delay_total: int, peak_backlog: int) -> FabricStats:
        mean_delay = delay_total / departures if departures else 0.0
        return FabricStats(
            slots=slots,
            n_ports=self.n_ports,
            arrivals=arrivals,
            departures=departures,
            mean_delay_slots=mean_delay,
            throughput=departures / (slots * self.n_ports),
            offered=arrivals / (slots * self.n_ports),
            backlog_cells=int(self._counts.sum()),
            peak_backlog_cells=peak_backlog,
        )


__all__ = ["CellFabricSim", "FabricStats"]
