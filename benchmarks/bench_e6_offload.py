"""Bench E6 — OCS offload fraction vs demand skew (+ estimator
ablation)."""

from conftest import run_and_report

from repro.experiments.e6_offload import run_e6


def test_bench_e6_offload(benchmark):
    report = run_and_report(benchmark, run_e6)
    hotspot = report.data["hotspot_fraction"]
    assert hotspot[-1] > hotspot[0]   # circuits capture skewed demand
    e2e = report.data["e2e_ocs_fraction"]
    assert e2e[-1] >= e2e[0]
    errors = report.data["estimator_errors"]
    assert errors["instant"] <= errors["sketch(w=16)"] + 1e-9
