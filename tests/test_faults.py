"""Tests for fault injection (transient effects, §3)."""

import pytest

from repro.core.config import FrameworkConfig
from repro.core.framework import HybridSwitchFramework
from repro.faults.injectors import (
    ConfigCorruptionInjector,
    LinkFlapInjector,
    SchedulerStallInjector,
)
from repro.net.link import Link
from repro.net.packet import Packet
from repro.sim.errors import ConfigurationError
from repro.sim.time import GIGABIT, MICROSECONDS, MILLISECONDS
from repro.traffic.patterns import PermutationDestination
from repro.traffic.sources import PoissonSource


def _packet(size=1000):
    return Packet(src=0, dst=1, size=size, created_ps=0)


class TestLinkFlap:
    def test_frames_lost_while_down(self, sim):
        delivered = []
        link = Link(sim, "l", 10 * GIGABIT, sink=delivered.append)
        LinkFlapInjector(sim, link, flaps=[(1000, 5000)])
        sim.at(2000, lambda: link.send(_packet()))   # inside the flap
        sim.at(10_000, lambda: link.send(_packet()))  # after recovery
        sim.run()
        assert link.fault_drops.count == 1
        assert len(delivered) == 1

    def test_is_down_flag(self, sim):
        link = Link(sim, "l", 10 * GIGABIT, sink=lambda p: None)
        LinkFlapInjector(sim, link, flaps=[(100, 1000)])
        sim.run(until=500)
        assert link.is_down
        sim.run(until=2000)
        assert not link.is_down

    def test_duration_validation(self, sim):
        link = Link(sim, "l", 10 * GIGABIT, sink=lambda p: None)
        with pytest.raises(ConfigurationError):
            LinkFlapInjector(sim, link, flaps=[(0, 0)])


class TestSchedulerStall:
    def _framework(self):
        fw = HybridSwitchFramework(FrameworkConfig(
            n_ports=4, switching_time_ps=1 * MICROSECONDS,
            scheduler="islip", timing_preset="ideal",
            default_slot_ps=10 * MICROSECONDS, seed=3))
        for host in fw.hosts:
            PoissonSource(
                fw.sim, host, rate_bps=0.3 * fw.config.port_rate_bps,
                chooser=PermutationDestination(4, host.host_id),
                rng=fw.sim.streams.stream(f"s{host.host_id}"))
        return fw

    def test_stall_reduces_epoch_count(self):
        baseline = self._framework()
        base_result = baseline.run(4 * MILLISECONDS)

        stalled = self._framework()
        injector = SchedulerStallInjector(
            stalled.sim, stalled.scheduling,
            start_ps=1 * MILLISECONDS, duration_ps=2 * MILLISECONDS)
        stall_result = stalled.run(4 * MILLISECONDS)
        assert injector.fired
        assert stalled.scheduling.stalls_deferred >= 1
        assert stall_result.epochs_run < base_result.epochs_run

    def test_stall_backlogs_traffic(self):
        stalled = self._framework()
        SchedulerStallInjector(
            stalled.sim, stalled.scheduling,
            start_ps=1 * MILLISECONDS, duration_ps=2 * MILLISECONDS)
        result = stalled.run(4 * MILLISECONDS)
        # During the stall arrivals keep queueing: the peak must cover
        # at least the stall window's worth of one port's arrivals.
        assert result.switch_peak_buffer_bytes > 100_000

    def test_duration_validation(self):
        fw = self._framework()
        with pytest.raises(ConfigurationError):
            SchedulerStallInjector(fw.sim, fw.scheduling, 0, 0)


class TestConfigCorruption:
    def test_corruption_misdirects_traffic(self):
        fw = HybridSwitchFramework(FrameworkConfig(
            n_ports=4, switching_time_ps=1 * MICROSECONDS,
            scheduler="hotspot",
            scheduler_kwargs={"hold_ps": 500 * MICROSECONDS},
            timing_preset="ideal",
            epoch_ps=600 * MICROSECONDS,
            default_slot_ps=500 * MICROSECONDS, seed=4))
        for host in fw.hosts:
            PoissonSource(
                fw.sim, host, rate_bps=0.3 * fw.config.port_rate_bps,
                chooser=PermutationDestination(4, host.host_id),
                rng=fw.sim.streams.stream(f"s{host.host_id}"))
        # The first epoch (t=0) sees empty demand and grants nothing;
        # the second epoch's window spans [601us, 1101us] — inject in
        # the middle of it so live circuits are actually corrupted.
        injector = ConfigCorruptionInjector(
            fw.sim, fw.ocs, at_ps=700 * MICROSECONDS)
        result = fw.run(2 * MILLISECONDS)
        assert injector.applied is not None
        # The wrong circuits ate some traffic mid-window...
        assert (result.drops["ocs_misdirected"]
                + result.drops["ocs_dark"]) > 0
        # ...but the next epoch repaired service.
        assert result.delivered_count > 0

    def test_recovery_within_one_epoch(self):
        fw = HybridSwitchFramework(FrameworkConfig(
            n_ports=4, switching_time_ps=1 * MICROSECONDS,
            scheduler="hotspot",
            scheduler_kwargs={"hold_ps": 100 * MICROSECONDS},
            timing_preset="ideal",
            epoch_ps=120 * MICROSECONDS,
            default_slot_ps=100 * MICROSECONDS, seed=4))
        for host in fw.hosts:
            PoissonSource(
                fw.sim, host, rate_bps=0.2 * fw.config.port_rate_bps,
                chooser=PermutationDestination(4, host.host_id),
                rng=fw.sim.streams.stream(f"s{host.host_id}"))
        ConfigCorruptionInjector(fw.sim, fw.ocs,
                                 at_ps=300 * MICROSECONDS)
        result = fw.run(3 * MILLISECONDS)
        # Post-recovery goodput: nearly everything offered before the
        # final epoch still gets through.
        assert result.delivery_ratio > 0.7
