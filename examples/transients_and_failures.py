#!/usr/bin/env python3
"""Transient effects: fault injection on the running hybrid switch.

§3 of the paper argues a hardware testbed "allows to detect and analyse
transient effects that may not be visible under simulation
environments".  Here we make the simulation show them on purpose: a
scheduler stall, a corrupted OCS configuration, and an uplink flap, each
injected into an otherwise healthy run, with the observable damage
reported afterwards.

    python examples/transients_and_failures.py
"""

from repro import FrameworkConfig, HybridSwitchFramework
from repro.faults import (
    ConfigCorruptionInjector,
    LinkFlapInjector,
    SchedulerStallInjector,
)
from repro.sim.time import MICROSECONDS, MILLISECONDS, format_time
from repro.traffic.patterns import UniformDestination
from repro.traffic.sources import PoissonSource

DURATION = 8 * MILLISECONDS


def build():
    config = FrameworkConfig(
        n_ports=8,
        switching_time_ps=5 * MICROSECONDS,
        scheduler="hotspot",
        timing_preset="netfpga_sume",
        epoch_ps=100 * MICROSECONDS,
        default_slot_ps=80 * MICROSECONDS,
        seed=31,
    )
    fw = HybridSwitchFramework(config)
    for host in fw.hosts:
        PoissonSource(
            fw.sim, host, rate_bps=0.35 * config.port_rate_bps,
            chooser=UniformDestination(
                8, host.host_id,
                fw.sim.streams.stream(f"d{host.host_id}")),
            rng=fw.sim.streams.stream(f"s{host.host_id}"))
    return fw


def report(label: str, result, extra: str = "") -> None:
    latency = result.latency()
    print(f"-- {label} --")
    print(f"  delivery ratio : {result.delivery_ratio:.3f}")
    print(f"  p99 latency    : {format_time(round(latency.p99_ps))}")
    print(f"  peak buffer    : {result.switch_peak_buffer_bytes} B")
    print(f"  drops          : {result.drops}")
    if extra:
        print(f"  {extra}")
    print()


def main() -> None:
    baseline = build()
    report("baseline (healthy)", baseline.run(DURATION))

    stalled = build()
    SchedulerStallInjector(stalled.sim, stalled.scheduling,
                           start_ps=2 * MILLISECONDS,
                           duration_ps=2 * MILLISECONDS)
    result = stalled.run(DURATION)
    report("scheduler stall 2ms..4ms", result,
           extra=f"epochs deferred: "
                 f"{stalled.scheduling.stalls_deferred}")

    corrupted = build()
    # 2 ms is an epoch boundary (no window open); 2.04 ms lands in the
    # middle of a granted circuit window, where corruption hurts.
    injector = ConfigCorruptionInjector(
        corrupted.sim, corrupted.ocs,
        at_ps=2 * MILLISECONDS + 40 * MICROSECONDS)
    result = corrupted.run(DURATION)
    report("OCS config corruption at 2.04ms", result,
           extra=f"corrupted matching applied: {injector.applied}")

    flapped = build()
    LinkFlapInjector(flapped.sim, flapped.topology.uplinks[0],
                     flaps=[(2 * MILLISECONDS, 1 * MILLISECONDS)])
    result = flapped.run(DURATION)
    report("uplink 0 flap 2ms..3ms", result,
           extra=f"frames lost on the dark wire: "
                 f"{flapped.topology.uplinks[0].fault_drops.count}")


if __name__ == "__main__":
    main()
