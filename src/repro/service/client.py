"""Blocking client for the sweep daemon (the ``--server`` path).

:class:`ServiceClient` wraps one connection: handshake on
:meth:`connect`, then ``submit``/``stats``/``cancel``/``shutdown``
calls that mirror the protocol frames one-to-one.

:func:`execute_via_server` is the piece the CLI uses — a drop-in
sibling of :func:`repro.runner.executor.execute` that routes the same
spec list through a daemon instead of the in-process pool and returns
the same ``List[RunOutcome]`` in spec order.  Report payloads cross
the wire in exactly the cache's JSON form, so the reports a client
reassembles are byte-identical to a local run (the same round-trip
the warm-cache path has always taken).

Resumability is client-driven and dumb on purpose: if the connection
dies mid-sweep, reconnect and resubmit *only the indices still
missing*.  Everything that finished before the drop is in the
daemon's shared cache, so the resubmission streams back instant hits
and the sweep completes with zero re-execution.  Reconnects pace
themselves with :class:`RetryPolicy` — bounded exponential backoff
with jitter — so a daemon restart (or a flapping network) sees a
trickle of retries instead of a thundering herd.

Failover rides the same loop: ``--server`` accepts a comma-separated
hub list (``primary,standby``), and each reconnect attempt rotates to
the next candidate.  When a standby promotes itself after primary
loss, the very next rotation lands on it, the missing indices are
resubmitted, and the campaign finishes as if nothing happened — the
client process never restarts.  ``ServiceBusy`` deliberately does
*not* rotate: a busy hub is alive and holds the warm cache; hopping
to a cold standby would trade a short wait for recomputation.
"""

from __future__ import annotations

import itertools
import os
import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from repro.runner.cache import report_from_payload
from repro.runner.executor import RunOutcome
from repro.runner.spec import RunSpec
from repro.service.protocol import (
    ProtocolError,
    connect,
    hello_frame,
    parse_address_list,
    read_frame,
    write_frame,
)


class ServiceError(RuntimeError):
    """The daemon refused a request or the conversation broke down."""


class ServiceBusy(ServiceError):
    """The daemon is over its queue watermark; retry after a delay.

    Carries the server's ``retry_after_s`` hint so callers back off at
    least as long as the daemon asked — :func:`execute_via_server`
    treats it as a floor under the normal :class:`RetryPolicy` delay.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with jitter for (re)connect loops.

    Attempt ``i`` (zero-based) sleeps within
    ``[cap·(1-jitter), cap]`` where ``cap = min(max_delay_s,
    base_delay_s · 2^i)``.  The deterministic floor keeps tests and
    the chaos harness predictable; the jittered remainder decorrelates
    a fleet of clients retrying against the same reborn daemon.

    ``max_attempts`` counts *re*tries: the first try is free, so a
    policy with ``max_attempts=5`` dials at most six times.
    """

    max_attempts: int = 5
    base_delay_s: float = 0.2
    max_delay_s: float = 10.0
    jitter: float = 0.5

    def delay_s(self, attempt: int,
                rng: Optional[random.Random] = None) -> float:
        cap = min(self.max_delay_s,
                  self.base_delay_s * (2.0 ** max(0, attempt)))
        if self.jitter <= 0.0:
            return cap
        rng = rng if rng is not None else random
        spread = min(1.0, max(0.0, self.jitter)) * cap
        return (cap - spread) + rng.random() * spread

    def delays(self, rng: Optional[random.Random] = None) -> Iterator[float]:
        """One delay per allowed retry, in order."""
        for attempt in range(self.max_attempts):
            yield self.delay_s(attempt, rng)


class ServiceClient:
    """One connection to a ``repro serve`` daemon."""

    def __init__(self, address: str,
                 timeout: Optional[float] = 300.0) -> None:
        self.address = address
        self.timeout = timeout
        self._sock = None
        self._submit_ids = itertools.count(1)
        self.server_info: Dict[str, Any] = {}

    # -- connection ----------------------------------------------------------

    def connect(self) -> "ServiceClient":
        """Dial and handshake; raises :class:`ServiceError` on refusal."""
        self._sock = connect(self.address, timeout=self.timeout)
        write_frame(self._sock, hello_frame())
        reply = self._read()
        if reply.get("type") == "error":
            self.close()
            raise ServiceError(
                f"server rejected handshake "
                f"[{reply.get('code')}]: {reply.get('message')}")
        if reply.get("type") != "welcome":
            self.close()
            raise ServiceError(
                f"expected welcome, got {reply.get('type')!r}")
        self.server_info = reply
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect() if self._sock is None else self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _read(self) -> Dict[str, Any]:
        if self._sock is None:
            raise ServiceError("client is not connected")
        frame = read_frame(self._sock)
        if frame is None:
            raise ConnectionError("server closed the connection")
        return frame

    def _send(self, frame: Dict[str, Any]) -> None:
        if self._sock is None:
            raise ServiceError("client is not connected")
        write_frame(self._sock, frame)

    # -- requests ------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The daemon's live counters (a ``stats`` frame)."""
        self._send({"type": "stats"})
        reply = self._read()
        if reply.get("type") != "stats":
            raise ServiceError(f"expected stats, got "
                               f"{reply.get('type')!r}")
        return reply

    def shutdown(self, wait_bye: bool = True) -> None:
        """Ask for a graceful drain; optionally wait for ``bye``."""
        self._send({"type": "shutdown"})
        while wait_bye:
            frame = read_frame(self._sock)
            if frame is None or frame.get("type") == "bye":
                return

    def cancel(self, submit_id: str) -> int:
        """Withdraw a live submission; returns jobs detached."""
        self._send({"type": "cancel", "submit_id": submit_id})
        while True:
            reply = self._read()
            if reply.get("type") == "cancelled" \
                    and reply.get("submit_id") == submit_id:
                return int(reply.get("detached", 0))
            if reply.get("type") == "error":
                raise ServiceError(
                    f"[{reply.get('code')}]: {reply.get('message')}")
            # results racing the cancel are fine to skip here; callers
            # doing surgical cancels should drive submit_stream.

    def submit(self, specs: Sequence[RunSpec],
               submit_id: Optional[str] = None) -> str:
        """Send one SUBMIT; returns its id (results stream after)."""
        if submit_id is None:
            submit_id = f"c{os.getpid()}-{next(self._submit_ids)}"
        self._send({
            "type": "submit",
            "submit_id": submit_id,
            "specs": [spec.canonical() for spec in specs],
        })
        reply = self._read()
        if reply.get("type") == "busy":
            raise ServiceBusy(
                f"server at {self.address} is overloaded "
                f"({reply.get('queued')} queued, "
                f"{reply.get('inflight')} in flight, "
                f"max_queue={reply.get('max_queue')}); "
                f"retry after {reply.get('retry_after_s')}s",
                retry_after_s=float(reply.get("retry_after_s") or 1.0))
        if reply.get("type") == "error":
            raise ServiceError(
                f"submit refused [{reply.get('code')}]: "
                f"{reply.get('message')}")
        if reply.get("type") != "accepted":
            raise ServiceError(
                f"expected accepted, got {reply.get('type')!r}")
        return submit_id

    def submit_stream(self, specs: Sequence[RunSpec]):
        """Submit and yield ``(index, RunOutcome)`` as results land.

        Indices refer to positions in ``specs``; completion order is
        the daemon's settle order, not plan order.
        """
        specs = list(specs)
        submit_id = self.submit(specs)
        received = 0
        while received < len(specs):
            frame = self._read()
            kind = frame.get("type")
            if kind == "result" and frame.get("submit_id") == submit_id:
                index = int(frame["index"])
                outcome = RunOutcome(
                    spec=specs[index],
                    report=report_from_payload(frame["report"]),
                    cached=bool(frame.get("cached")),
                    elapsed_s=float(frame.get("elapsed_s") or 0.0),
                    error=frame.get("error"),
                    kind=frame.get("kind"),
                )
                received += 1
                yield index, outcome
            elif kind == "done":
                if received < len(specs):
                    raise ServiceError(
                        f"done after {received}/{len(specs)} results")
                return
            elif kind == "error":
                raise ServiceError(
                    f"[{frame.get('code')}]: {frame.get('message')}")
            elif kind == "bye":
                raise ConnectionError(
                    "server shut down before the sweep finished")
        # Consume the trailing done frame so the connection stays
        # aligned for the next request.
        frame = self._read()
        if frame.get("type") not in ("done", "bye"):
            raise ServiceError(
                f"expected done, got {frame.get('type')!r}")


def execute_via_server(
    address: str,
    specs: Sequence[RunSpec],
    *,
    on_outcome: Optional[Callable[[RunOutcome], None]] = None,
    retry: Optional[RetryPolicy] = None,
    rng: Optional[random.Random] = None,
) -> List[RunOutcome]:
    """Run every spec on a daemon; outcomes return in spec order.

    The server-side twin of :func:`repro.runner.executor.execute`:
    same inputs, same outputs, same ``on_outcome`` streaming contract.
    A dropped connection backs off per ``retry`` and resubmits only
    the missing indices — an idempotent merge, because specs are
    content-addressed: completed work is served from the daemon's
    cache, never re-executed.  ``rng`` pins the jitter for tests.

    ``address`` may be a comma-separated failover list; connection
    losses rotate through the candidates so a promoted standby picks
    the campaign up mid-flight.
    """
    specs = list(specs)
    outcomes: List[Optional[RunOutcome]] = [None] * len(specs)
    if not specs:
        return []
    candidates = parse_address_list(address)
    policy = retry if retry is not None else RetryPolicy()
    attempts_used = 0
    target = 0
    while True:
        missing = [i for i, done in enumerate(outcomes) if done is None]
        if not missing:
            return list(outcomes)  # type: ignore[return-value]
        try:
            with ServiceClient(candidates[target % len(candidates)]) \
                    as client:
                stream = client.submit_stream(
                    [specs[i] for i in missing])
                for position, outcome in stream:
                    outcomes[missing[position]] = outcome
                    if on_outcome:
                        on_outcome(outcome)
        except ServiceBusy as exc:
            # Admission control, not a failure: the daemon asked us to
            # come back later.  Honor its hint as a floor under the
            # policy's own backoff so a fleet of refused clients still
            # decorrelates, but never outwait max_delay_s.  No
            # rotation — a busy hub is alive and warm.
            if attempts_used >= policy.max_attempts:
                raise ServiceError(
                    f"server at {address} stayed busy through "
                    f"{policy.max_attempts} backoff attempts: {exc}"
                ) from exc
            delay = max(exc.retry_after_s,
                        policy.delay_s(attempts_used, rng))
            time.sleep(min(delay, policy.max_delay_s))
            attempts_used += 1
            continue
        except (ConnectionError, ProtocolError, OSError) as exc:
            if attempts_used >= policy.max_attempts:
                raise ServiceError(
                    f"lost the connection to {address} and exhausted "
                    f"{policy.max_attempts} reconnect attempts "
                    f"({attempts_used + 1} tries total): {exc}"
                ) from exc
            target += 1  # try the next hub in the failover list
            time.sleep(policy.delay_s(attempts_used, rng))
            attempts_used += 1
            continue


__all__ = ["ServiceClient", "ServiceError", "ServiceBusy", "RetryPolicy",
           "execute_via_server"]
