"""Event and event-queue primitives.

The queue is a binary heap of ``(time, sequence, Event)`` tuples.  The
monotonically increasing sequence number guarantees a total order even
when many events share a timestamp, which makes runs deterministic and
lets FIFO semantics fall out naturally: events scheduled earlier at the
same instant fire earlier.

Both classes sit on the engine's hottest path — every packet hop is at
least one push/pop — so :class:`Event` is a ``slots=True`` dataclass
(no per-event ``__dict__`` allocation) and the queue keeps its live
count consistent with O(1) bookkeeping instead of heap scans.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sim.errors import SimulationError


@dataclass(slots=True)
class Event:
    """A single scheduled callback.

    Attributes
    ----------
    time:
        Absolute firing time in picoseconds.
    callback:
        Zero-argument callable invoked when the event fires.  Closures
        carry their own context; keeping the signature empty keeps the
        dispatch loop branch-free.
    label:
        Optional human-readable tag used by tracing and error messages.
        Callers on hot paths should pass a precomputed constant (or
        nothing) rather than building an f-string per event.
    cancelled:
        Lazy-deletion flag.  Cancelled events stay in the heap but are
        skipped on pop; this is O(1) per cancel instead of O(n) removal.
    """

    time: int
    callback: Callable[[], None]
    label: str = ""
    cancelled: bool = field(default=False, compare=False)
    #: Internal: True once an :class:`EventQueue` has subtracted this
    #: event's cancellation from its live count.  Lets the queue stay
    #: consistent whether the cancel arrived via :meth:`EventQueue.cancel`
    #: or directly via :meth:`Event.cancel`.
    accounted: bool = field(default=False, compare=False, repr=False)
    #: Internal: total-order tiebreak assigned by :meth:`EventQueue.push`.
    #: Kept on the event so :meth:`EventQueue.requeue` can reinsert a
    #: batch-popped event *at its original position* relative to events
    #: scheduled later at the same timestamp.
    sequence: int = field(default=-1, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self.cancelled = True


class EventQueue:
    """Deterministic min-heap of :class:`Event` objects.

    Not thread-safe; the simulator is single-threaded by design.

    ``len(queue)`` is the number of *live* (non-cancelled) events.  An
    event cancelled directly via :meth:`Event.cancel` (bypassing
    :meth:`cancel`) is reconciled into the count the next time the
    queue touches it — on :meth:`cancel`, or when :meth:`pop` /
    :meth:`peek_time` compact it off the heap — so interleaved
    cancel/peek sequences can never drift the count.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Event]] = []
        self._next_sequence = itertools.count().__next__
        self._live = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events still queued."""
        return self._live

    def push(self, event: Event) -> None:
        """Insert an event; O(log n).

        Each :class:`Event` instance must be pushed at most once.
        """
        sequence = self._next_sequence()
        event.sequence = sequence
        heapq.heappush(self._heap, (event.time, sequence, event))
        self._live += 1

    def _discount(self, event: Event) -> None:
        """Subtract a cancelled event from the live count exactly once."""
        if not event.accounted:
            event.accounted = True
            self._live -= 1

    def pop(self) -> Event:
        """Remove and return the earliest live event; O(log n) amortised.

        Raises :class:`SimulationError` when empty.
        """
        while self._heap:
            __, __, event = heapq.heappop(self._heap)
            if event.cancelled:
                self._discount(event)
                continue
            # Mark the event accounted: it has left the live count, so
            # a later cancel() on the already-fired event (stale-timer
            # cleanup) must not subtract it a second time.
            event.accounted = True
            self._live -= 1
            return event
        raise SimulationError("pop from empty event queue")

    def pop_ready(self, until_time: int) -> list[Event]:
        """Pop every live event with ``time <= until_time``, in order.

        The batch fast path under :meth:`Simulator.run
        <repro.sim.engine.Simulator.run>`: on dense same-timestamp
        bursts the per-event heap-tuple unpack and cancellation checks
        are paid once per batch instead of once per event.  Popped
        events leave the live count exactly as :meth:`pop` would;
        cancelled events encountered on the way are compacted and
        reconciled.  A consumer that cannot dispatch the whole batch
        (stop request, event budget, a raising callback) must hand the
        unconsumed tail back via :meth:`requeue` — and must itself skip
        any batch member whose ``cancelled`` flag was raised by an
        earlier callback in the batch.
        """
        heap = self._heap
        ready: list[Event] = []
        while heap and heap[0][0] <= until_time:
            __, __, event = heapq.heappop(heap)
            if event.cancelled:
                self._discount(event)
                continue
            event.accounted = True
            self._live -= 1
            ready.append(event)
        return ready

    def requeue(self, events: "list[Event]") -> None:
        """Reinsert events handed out by :meth:`pop_ready` but not run.

        Events keep the sequence number :meth:`push` assigned, so they
        land *before* anything scheduled after them at the same
        timestamp — order is exactly as if they had never been popped.
        Events cancelled while popped are dropped (they are already
        accounted).
        """
        for event in events:
            if event.cancelled:
                continue
            heapq.heappush(self._heap,
                           (event.time, event.sequence, event))
            event.accounted = False
            self._live += 1

    def peek_time(self) -> Optional[int]:
        """Firing time of the earliest live event, or ``None`` if empty.

        Compacts cancelled events off the top as a side effect,
        reconciling any that were cancelled behind the queue's back.
        """
        heap = self._heap
        while heap and heap[0][2].cancelled:
            self._discount(heap[0][2])
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0][0]

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event (idempotent)."""
        event.cancelled = True
        self._discount(event)

    def clear(self) -> None:
        """Drop every queued event."""
        for __, __, event in self._heap:
            event.accounted = True  # a later cancel() must be a no-op
        self._heap.clear()
        self._live = 0


__all__ = ["Event", "EventQueue"]
