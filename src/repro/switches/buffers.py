"""Bounded packet FIFO with occupancy accounting.

Every queue in the system (VOQs, EPS output queues) is a
:class:`PacketQueue`.  It tracks byte/packet occupancy continuously so
Figure 1's "how much memory does this switching time cost" question can
be answered from simulation, not just the analytic model.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Deque, Optional

from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.errors import ConfigurationError
from repro.sim.trace import Counter, TimeSeries


class DropPolicy(enum.Enum):
    """What happens when an enqueue would exceed capacity."""

    #: Silently drop the arriving packet (counted).
    TAIL_DROP = "tail_drop"
    #: Raise :class:`~repro.sim.errors.CapacityError` — for experiments
    #: where overflow indicates a model bug rather than congestion.
    ERROR = "error"


class PacketQueue:
    """FIFO of packets with optional byte and packet caps.

    Parameters
    ----------
    sim:
        Simulator (for occupancy timestamps).
    name:
        Trace name.
    capacity_bytes / capacity_packets:
        ``None`` means unbounded along that dimension.
    policy:
        Behaviour at capacity (default tail drop, like a real ToR).
    trace_occupancy:
        Record the full ``occupancy`` time series (one sample per
        enqueue/dequeue).  Off by default: the series is a debugging
        diagnostic, and untraced runs should not pay two list appends
        plus unbounded memory per packet.  Peaks and counters are
        always maintained — they are what experiments report.
    """

    def __init__(self, sim: Simulator, name: str,
                 capacity_bytes: Optional[int] = None,
                 capacity_packets: Optional[int] = None,
                 policy: DropPolicy = DropPolicy.TAIL_DROP,
                 trace_occupancy: bool = False) -> None:
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ConfigurationError(f"{name}: capacity_bytes must be > 0")
        if capacity_packets is not None and capacity_packets <= 0:
            raise ConfigurationError(f"{name}: capacity_packets must be > 0")
        self.sim = sim
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.capacity_packets = capacity_packets
        self.policy = policy
        self._queue: Deque[Packet] = deque()
        self._bytes = 0
        self.peak_bytes = 0
        self.peak_packets = 0
        self.occupancy = TimeSeries(f"{name}.bytes",
                                    enabled=trace_occupancy)
        self.drops = Counter(f"{name}.drops")
        self.enqueues = Counter(f"{name}.enqueues")
        self.dequeues = Counter(f"{name}.dequeues")
        #: Called after every occupancy change with the new byte count.
        self.on_change: Optional[Callable[[int], None]] = None

    # -- state ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def bytes(self) -> int:
        """Current occupancy in bytes."""
        return self._bytes

    @property
    def is_empty(self) -> bool:
        """True when no packets are queued."""
        return not self._queue

    def head(self) -> Optional[Packet]:
        """Peek at the head-of-line packet without removing it."""
        return self._queue[0] if self._queue else None

    # -- operations -------------------------------------------------------------

    def enqueue(self, packet: Packet) -> bool:
        """Append ``packet``; returns False if it was dropped at capacity."""
        over_bytes = (self.capacity_bytes is not None
                      and self._bytes + packet.size > self.capacity_bytes)
        over_packets = (self.capacity_packets is not None
                        and len(self._queue) + 1 > self.capacity_packets)
        if over_bytes or over_packets:
            if self.policy is DropPolicy.ERROR:
                from repro.sim.errors import CapacityError
                raise CapacityError(
                    f"queue {self.name} overflow: {self._bytes}B +"
                    f" {packet.size}B > {self.capacity_bytes}B")
            self.drops.add(1, packet.size)
            return False
        packet.enqueued_ps = self.sim.now
        self._queue.append(packet)
        self._bytes += packet.size
        self.enqueues.add(1, packet.size)
        self._note_change()
        return True

    def dequeue(self) -> Packet:
        """Remove and return the head-of-line packet.

        Raises ``IndexError`` when empty — callers must check
        :attr:`is_empty`; an unexpected empty dequeue is a protocol bug.
        """
        packet = self._queue.popleft()
        self._bytes -= packet.size
        packet.dequeued_ps = self.sim.now
        self.dequeues.add(1, packet.size)
        self._note_change()
        return packet

    def popleft_run(self, times: "list[int]") -> "list[Packet]":
        """Dequeue ``len(times)`` head packets stamped at ``times``.

        The batched-drain fast path: identical to calling
        :meth:`dequeue` at each ``times[i]`` (ascending, first == now),
        with the byte accounting, counters and change notification paid
        once per run.  Caller contract: the queue holds at least that
        many packets and :attr:`on_change` is unset (a hook must see
        every step).  Occupancy peaks are unaffected — dequeues only
        shrink the queue.
        """
        popleft = self._queue.popleft
        packets = []
        nbytes = 0
        for when in times:
            packet = popleft()
            packet.dequeued_ps = when
            nbytes += packet.size
            packets.append(packet)
        self._bytes -= nbytes
        self.dequeues.add(len(packets), nbytes)
        self._note_change()
        return packets

    def drain(self) -> "list[Packet]":
        """Remove and return every queued packet (teardown helper)."""
        drained = []
        while self._queue:
            drained.append(self.dequeue())
        return drained

    # -- internals ------------------------------------------------------------------

    def _note_change(self) -> None:
        if self._bytes > self.peak_bytes:
            self.peak_bytes = self._bytes
        if len(self._queue) > self.peak_packets:
            self.peak_packets = len(self._queue)
        self.occupancy.record(self.sim.now, self._bytes)
        if self.on_change is not None:
            self.on_change(self._bytes)


__all__ = ["PacketQueue", "DropPolicy"]
