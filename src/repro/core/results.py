"""Run results: everything an experiment needs to report.

:class:`RunResult` is a passive record assembled by the framework after
``run()``.  It comes in two telemetry flavours:

* **reference** — ``delivered`` holds the actual :class:`Packet`
  objects, in per-host delivery order, exactly as the hosts retained
  them;
* **columnar** (the fast lane) — ``log`` holds a
  :class:`~repro.analysis.record.PacketLog` with one int64 column per
  packet field, and ``delivered`` is a *lazy view* that materialises
  equivalent ``Packet`` objects on first touch.  All derived metrics
  read the columns directly (no materialisation, no copies) and are
  bit-identical to the reference computations: the columns hold the
  same integers in the same order, and the float kernels consume the
  same float64 arrays the list path would have built.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.metrics import (
    LatencySummary,
    interarrival_jitter_ps,
    latency_summary,
    latency_summary_from_arrays,
    throughput_bps,
    utilisation,
)
from repro.analysis.record import PacketLog
from repro.net.packet import Packet


@dataclass
class RunResult:
    """Outcome of one framework run.

    All byte counters are L2 frame bytes (the quantity buffers store).
    """

    duration_ps: int
    n_ports: int
    port_rate_bps: float
    #: Columnar delivery record (fast lane); ``None`` on the reference
    #: path.
    log: Optional[PacketLog] = None
    offered_packets: int = 0
    offered_bytes: int = 0
    delivered_bytes: int = 0
    ocs_bytes: int = 0
    eps_bytes: int = 0
    #: Drop accounting by cause.
    drops: Dict[str, int] = field(default_factory=dict)
    #: Peak simultaneous VOQ occupancy at the switch (Figure 1, fast).
    switch_peak_buffer_bytes: int = 0
    #: Peak simultaneous occupancy summed across host queues (slow).
    host_peak_buffer_bytes: int = 0
    #: Peak single EPS output queue.
    eps_peak_buffer_bytes: int = 0
    epochs_run: int = 0
    grants_issued: int = 0
    mean_loop_latency_ps: float = 0.0
    ocs_reconfigurations: int = 0
    ocs_blackout_ps: int = 0

    def __post_init__(self) -> None:
        self._delivered_list: Optional[List[Packet]] = (
            None if self.log is not None else [])

    # -- packet access -----------------------------------------------------------

    @property
    def delivered(self) -> List[Packet]:
        """Every packet delivered to a host, in delivery order per host.

        On the columnar path this materialises (and caches) ``Packet``
        views from the log; metric helpers below never need it.
        """
        if self._delivered_list is None:
            assert self.log is not None
            self._delivered_list = list(self.log.packets())
        return self._delivered_list

    # -- derived metrics ---------------------------------------------------------

    @property
    def delivered_count(self) -> int:
        """Number of packets that reached their destination."""
        if self.log is not None:
            return len(self.log)
        return len(self.delivered)

    @property
    def delivery_ratio(self) -> float:
        """Delivered / offered packets (1.0 when nothing was offered)."""
        if self.offered_packets == 0:
            return 1.0
        return self.delivered_count / self.offered_packets

    @property
    def ocs_fraction(self) -> float:
        """Fraction of delivered bytes that rode the optical fabric."""
        total = self.ocs_bytes + self.eps_bytes
        return self.ocs_bytes / total if total else 0.0

    def goodput_bps(self) -> float:
        """Aggregate delivered rate over the run."""
        return throughput_bps(self.delivered_bytes, self.duration_ps)

    def utilisation(self) -> float:
        """Goodput as a fraction of aggregate port capacity."""
        return utilisation(self.delivered_bytes, self.duration_ps,
                           self.n_ports * self.port_rate_bps)

    def offered_load(self) -> float:
        """Offered bytes as a fraction of aggregate capacity."""
        return utilisation(self.offered_bytes, self.duration_ps,
                           self.n_ports * self.port_rate_bps)

    def latency(self, priority: Optional[int] = None) -> LatencySummary:
        """Latency summary, optionally restricted to one priority class."""
        if self.log is not None:
            latencies = self.log.latency_ps()
            if priority is not None:
                latencies = latencies[self.log.priority == priority]
            return latency_summary_from_arrays(latencies)
        return latency_summary(self.delivered, priority=priority)

    def flow_packets(self, flow_id: int) -> List[Packet]:
        """Delivered packets of one flow, ordered by delivery time."""
        packets = [p for p in self.delivered if p.flow_id == flow_id]
        packets.sort(key=lambda p: p.delivered_ps or 0)
        return packets

    def flow_arrivals_ps(self, flow_id: int) -> np.ndarray:
        """Delivery timestamps of one flow, ordered by delivery time."""
        if self.log is not None:
            arrivals = self.log.delivered_ps[self.log.flow_id == flow_id]
            return np.sort(arrivals, kind="stable")
        return np.asarray(
            [p.delivered_ps for p in self.flow_packets(flow_id)
             if p.delivered_ps is not None], dtype=np.int64)

    def flow_latencies_ps(self, flow_id: int) -> np.ndarray:
        """End-to-end latencies of one flow (delivery order)."""
        if self.log is not None:
            mask = self.log.flow_id == flow_id
            delivered = self.log.delivered_ps[mask]
            created = self.log.created_ps[mask]
            # Stable by delivery time — the same permutation the
            # reference path's Timsort applies to the packet list.
            order = np.argsort(delivered, kind="stable")
            return delivered[order] - created[order]
        return np.asarray(
            [p.latency_ps for p in self.flow_packets(flow_id)
             if p.latency_ps is not None], dtype=np.int64)

    def flow_jitter_ps(self, flow_id: int, period_ps: int) -> float:
        """RFC 3550 interarrival jitter for a nominally periodic flow."""
        return interarrival_jitter_ps(self.flow_arrivals_ps(flow_id),
                                      period_ps)

    @property
    def total_drops(self) -> int:
        """Sum over all drop causes."""
        return sum(self.drops.values())


__all__ = ["RunResult"]
