"""E7 — schedule-computation scalability with port count.

§2 claims hardware schedulers "can match the speeds of fast optical
switches".  That must survive scaling: the paper's framework targets
"tens of processing elements" and commercial OCS port counts reach the
hundreds.  Two series:

* **Hardware-model latency** — the FPGA pipeline model's compute stage
  per algorithm, n = 8..256.  The shape to verify: iSLIP-class
  algorithms grow O(log n) per iteration and stay sub-microsecond at
  256 ports on a 200 MHz fabric, while exact MWM's O(n²)-cycle systolic
  model leaves the nanosecond class around n = 64 — quantifying *why*
  real hardware schedulers are iterative matchers.
* **Implementation wall-clock** — how long our Python implementations
  actually take (sanity series: polynomial growth, MWM ≫ iSLIP).  These
  numbers say nothing about hardware; they keep the model honest about
  asymptotics.
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from repro.analysis.tables import render_table
from repro.experiments.base import ExperimentConfig, ExperimentReport
from repro.hwmodel.presets import make_timing
from repro.schedulers.registry import create_scheduler
from repro.sim.time import MICROSECONDS, format_time

ALGORITHMS = ("tdma", "wfa", "islip", "pim", "greedy-mwm", "mwm")

#: Overrides this experiment honours (``repro run e7 --set ...``).
KNOWN_OVERRIDES = frozenset({"port_counts"})


def _demand(n_ports: int, seed: int = 3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    demand = rng.exponential(50_000, size=(n_ports, n_ports))
    np.fill_diagonal(demand, 0.0)
    return demand


def run(config: ExperimentConfig) -> ExperimentReport:
    """Compute-stage latency and wall-clock vs port count.

    The Python wall-clock sanity series is inherently non-deterministic
    (it measures this process on this machine), so it only runs when
    ``config.measure_wallclock`` is set; a pure run reports just the
    hardware-model series.
    """
    report = ExperimentReport(
        experiment_id="e7",
        title="schedule-computation scalability with port count",
    )
    report.check_overrides(config, KNOWN_OVERRIDES)
    port_counts = tuple(config.get(
        "port_counts",
        (8, 32, 64) if config.quick else (8, 16, 32, 64, 128, 256)))
    demand_seed = config.derive_seed(3)
    # Hardware-model series.
    model_rows: List[List[str]] = []
    model_data: Dict[str, List[int]] = {a: [] for a in ALGORITHMS}
    timing = make_timing("netfpga_sume")
    for n in port_counts:
        demand = _demand(n, seed=demand_seed)
        row = [str(n)]
        for algo in ALGORITHMS:
            scheduler = create_scheduler(algo, n_ports=n)
            scheduler.compute(demand)
            breakdown = timing.breakdown(algo, n, scheduler.last_stats)
            model_data[algo].append(breakdown.computation_ps)
            row.append(format_time(breakdown.computation_ps))
        model_rows.append(row)
    report.tables.append(render_table(
        ["ports"] + list(ALGORITHMS), model_rows,
        title="hardware-model compute latency (netfpga_sume, 200 MHz)"))
    report.data["model_compute_ps"] = model_data
    islip_256 = model_data["islip"][-1]
    if islip_256 <= 1 * MICROSECONDS:
        report.expectations.append(
            f"iSLIP compute stays at {format_time(islip_256)} at "
            f"{port_counts[-1]} ports — hardware keeps pace with fast "
            "optics (paper §2)")
    if model_data["mwm"][-1] > model_data["islip"][-1]:
        report.expectations.append(
            "exact MWM scales out of the fast class while iterative "
            "matchers stay in it — why real hardware schedulers are "
            "iSLIP-shaped")
    if not config.measure_wallclock:
        return report
    # Wall-clock sanity series.
    wall_rows: List[List[str]] = []
    wall_data: Dict[str, List[float]] = {a: [] for a in ALGORITHMS}
    repeats = 3 if config.quick else 5
    for n in port_counts:
        demand = _demand(n, seed=demand_seed)
        row = [str(n)]
        for algo in ALGORITHMS:
            scheduler = create_scheduler(algo, n_ports=n)
            scheduler.compute(demand)  # warm caches/pointers
            start = time.perf_counter()
            for __ in range(repeats):
                scheduler.compute(demand)
            elapsed_us = (time.perf_counter() - start) * 1e6 / repeats
            wall_data[algo].append(elapsed_us)
            row.append(f"{elapsed_us:.1f}us")
        wall_rows.append(row)
    report.tables.append(render_table(
        ["ports"] + list(ALGORITHMS), wall_rows,
        title="Python implementation wall-clock (sanity series, not "
              "hardware)"))
    report.data["wall_us"] = wall_data
    if wall_data["islip"][-1] < wall_data["mwm"][-1] * 50:
        # Only assert the weak direction: MWM must not be cheaper.
        pass
    if wall_data["mwm"][-1] >= wall_data["tdma"][-1]:
        report.expectations.append(
            "wall-clock ordering matches asymptotics (MWM >= TDMA)")
    return report


def run_e7(quick: bool = False) -> ExperimentReport:
    """Historical entry point: includes the wall-clock series."""
    return run(ExperimentConfig(quick=quick, measure_wallclock=True))


__all__ = ["run", "run_e7", "ALGORITHMS", "KNOWN_OVERRIDES"]
