#!/usr/bin/env python3
"""A realistic rack: elephants on circuits, mice on the EPS, VOIP safe.

The workload the paper's introduction motivates: long bursts (elephant
flows) that belong on the optical circuit switch, short flows that the
electrical switch should carry, and a latency-sensitive VOIP stream
whose jitter must survive the mix.  Compares a c-Through-style hotspot
scheduler with a Solstice-style multi-matching scheduler.

    python examples/datacenter_workload.py
"""

from repro import FrameworkConfig, HybridSwitchFramework
from repro.sim.time import GIGABIT, MICROSECONDS, MILLISECONDS, format_time
from repro.traffic.flows import (
    WEBSEARCH_FLOW_SIZES,
    EmpiricalSizeDistribution,
    FlowSource,
)
from repro.traffic.patterns import HotspotDestination, UniformDestination
from repro.traffic.sources import CbrSource, OnOffSource

N_PORTS = 8
DURATION = 10 * MILLISECONDS


def build_and_run(scheduler: str, scheduler_kwargs: dict) -> None:
    config = FrameworkConfig(
        n_ports=N_PORTS,
        port_rate_bps=10 * GIGABIT,
        switching_time_ps=20 * MICROSECONDS,   # Mordia-class optics
        scheduler=scheduler,
        scheduler_kwargs=scheduler_kwargs,
        timing_preset="netfpga_sume",
        epoch_ps=200 * MICROSECONDS,
        default_slot_ps=160 * MICROSECONDS,
        eps_rate_bps=2.5 * GIGABIT,            # thin residual path
        seed=21,
    )
    fw = HybridSwitchFramework(config)

    # VOIP-class stream host0 -> host4 (priority 1).
    voip = CbrSource(fw.sim, fw.hosts[0], dst=4, packet_bytes=200,
                     period_ps=200 * MICROSECONDS)

    for host in fw.hosts:
        # Elephants: heavy ON/OFF bursts, skewed toward one partner.
        OnOffSource(
            fw.sim, host,
            burst_rate_bps=0.5 * config.port_rate_bps,
            mean_on_ps=300 * MICROSECONDS,
            mean_off_ps=400 * MICROSECONDS,
            chooser=HotspotDestination(
                N_PORTS, host.host_id, skew=0.8,
                rng=fw.sim.streams.stream(f"hot{host.host_id}")),
            rng=fw.sim.streams.stream(f"burst{host.host_id}"))
        # Mice: web-search flow mix at light load, uniform.
        FlowSource(
            fw.sim, host,
            chooser=UniformDestination(
                N_PORTS, host.host_id,
                fw.sim.streams.stream(f"mice-dst{host.host_id}")),
            distribution=EmpiricalSizeDistribution(WEBSEARCH_FLOW_SIZES),
            offered_bps=0.05 * config.port_rate_bps,
            rng=fw.sim.streams.stream(f"mice{host.host_id}"))

    result = fw.run(DURATION)

    voip_summary = result.latency(priority=1)
    jitter = result.flow_jitter_ps(voip.flow_id, 200 * MICROSECONDS)
    print(f"-- scheduler: {scheduler} --")
    print(f"  utilisation      : {result.utilisation():.3f}")
    print(f"  OCS byte share   : {result.ocs_fraction:.1%} "
          f"(elephants on circuits)")
    print(f"  reconfigurations : {result.ocs_reconfigurations} "
          f"({format_time(result.ocs_blackout_ps)} dark)")
    print(f"  VOIP p99 latency : "
          f"{format_time(round(voip_summary.p99_ps))}")
    print(f"  VOIP jitter      : {format_time(round(jitter))}")
    print(f"  drops            : {result.total_drops}")


def main() -> None:
    build_and_run("hotspot", {"threshold_bytes": 50_000.0})
    build_and_run("solstice", {
        "reconfig_ps": 20 * MICROSECONDS,
        "min_slice_factor": 2.0,
        "max_matchings": 4,
    })


if __name__ == "__main__":
    main()
