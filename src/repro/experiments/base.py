"""Shared experiment types: the run configuration and the report.

Every experiment module exposes a *pure* entry point::

    def run(config: ExperimentConfig) -> ExperimentReport

Pure means: the report is a deterministic function of ``config`` alone
— no wall-clock measurements, no module-level counters, no ambient RNG.
That contract is what lets ``repro.runner`` execute experiments in
worker processes and cache their reports content-addressed by spec.
The historical ``run_eN(quick=...)`` wrappers remain for direct calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything an experiment run depends on.

    Attributes
    ----------
    quick:
        Reduced problem sizes (CI/smoke), same shapes.
    seed:
        Base seed for every RNG the experiment owns.  ``None`` keeps
        each experiment's historical default seeds, so existing numbers
        (and EXPERIMENTS.md) stay stable.
    scheduler:
        Registry-name override for experiments that sweep a single
        framework scheduler (e1, e3, e6, e8).  ``None`` keeps each
        experiment's default.
    measure_wallclock:
        Allow non-deterministic extras (e7's Python wall-clock sanity
        series).  Off by default: a pure run must be bit-reproducible.
    overrides:
        Experiment-specific knobs (``n_ports``, ``duration_ps``,
        ``loads`` ...).  Experiments that declare a ``KNOWN_OVERRIDES``
        set surface unknown keys as report warnings (see
        :meth:`unknown_overrides`); keys outside any declaration are
        ignored.
    """

    quick: bool = False
    seed: Optional[int] = None
    scheduler: Optional[str] = None
    measure_wallclock: bool = False
    overrides: Mapping[str, Any] = field(default_factory=dict)

    def get(self, name: str, default: Any) -> Any:
        """An override value, or ``default`` when not overridden."""
        return self.overrides.get(name, default)

    def unknown_overrides(self, known: Iterable[str]) -> List[str]:
        """Override keys outside an experiment's declared set, sorted."""
        return sorted(set(self.overrides) - set(known))

    def derive_seed(self, default: int) -> int:
        """A per-stream seed.

        Experiments own several independent RNG streams (traffic,
        demand matrices, estimator noise ...), each with a historical
        default seed.  With no base seed configured the default is
        returned unchanged — bit-compatible with the seed repo.  With a
        base seed, every stream moves together but streams stay
        distinct (1009 is prime, so distinct defaults never collide
        for base seeds below it).
        """
        if self.seed is None:
            return default
        return self.seed * 1009 + default


@dataclass
class ExperimentReport:
    """One experiment's output: printable tables plus raw data.

    Attributes
    ----------
    experiment_id:
        "e1".."e8".
    title:
        Which paper artifact this reproduces.
    tables:
        Rendered ASCII tables (what the bench prints).
    data:
        Raw series keyed by name, for tests and EXPERIMENTS.md
        assertions (each value is whatever the experiment found
        natural: lists, dicts, floats).
    expectations:
        Human-readable statements of the paper-shape checks this run
        satisfied (filled by the experiment itself after verifying).
    warnings:
        Configuration smells the run survived but the caller should
        see — e.g. override keys the experiment does not define.
    """

    experiment_id: str
    title: str
    tables: List[str] = field(default_factory=list)
    data: Dict[str, Any] = field(default_factory=dict)
    expectations: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    def check_overrides(self, config: ExperimentConfig,
                        known: Iterable[str]) -> None:
        """Collect a warning for every override key outside ``known``.

        This is the opt-in strict validation of
        ``ExperimentConfig.overrides``: experiments declare their
        ``KNOWN_OVERRIDES`` and call this first, so a typo like
        ``--set durration_ps=...`` surfaces in the report instead of
        silently running the defaults.
        """
        known = sorted(set(known))
        for key in config.unknown_overrides(known):
            self.warnings.append(
                f"unknown override {key!r} ignored by "
                f"{self.experiment_id} (known: {', '.join(known)})")

    def render(self) -> str:
        """Full printable report."""
        parts = [f"== {self.experiment_id.upper()}: {self.title} =="]
        parts.extend(self.tables)
        if self.warnings:
            parts.append("Warnings:")
            parts.extend(f"  [!!] {line}" for line in self.warnings)
        if self.expectations:
            parts.append("Checks:")
            parts.extend(f"  [ok] {line}" for line in self.expectations)
        return "\n\n".join(parts)


__all__ = ["ExperimentConfig", "ExperimentReport"]
