"""The matching (grant-matrix) type shared by schedulers and switches.

A schedule for one reconfiguration of the optical circuit switch is a
*partial permutation*: each input port connects to at most one output
and vice versa.  :class:`Matching` stores it as a tuple mapping
input → output with ``None`` for unmatched inputs, validates the
permutation property on construction, and offers the conversions the
rest of the system needs (pair list, boolean matrix, composition checks).

The paper calls this object the "grant matrix": the scheduling logic
"sends the grant matrix to the switching logic to configure the circuits
in the OCS to match the grant matrix".
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.errors import SchedulingError


class Matching:
    """An immutable partial permutation on ``n`` ports."""

    __slots__ = ("_out_of", "n", "_array")

    def __init__(self, out_of: Sequence[Optional[int]]) -> None:
        """``out_of[i]`` is the output matched to input ``i`` (or None).

        Raises :class:`SchedulingError` if any output is repeated or out
        of range — an invalid grant matrix must never reach the OCS.
        """
        self.n = len(out_of)
        seen = set()
        for inp, out in enumerate(out_of):
            if out is None:
                continue
            if not 0 <= out < self.n:
                raise SchedulingError(
                    f"matching maps input {inp} to out-of-range output {out}")
            if out in seen:
                raise SchedulingError(
                    f"matching maps two inputs to output {out}")
            seen.add(out)
        self._out_of: Optional[Tuple[Optional[int], ...]] = tuple(out_of)
        self._array: Optional[np.ndarray] = None

    # -- constructors ----------------------------------------------------------

    @classmethod
    def empty(cls, n: int) -> "Matching":
        """The all-dark matching (no circuits)."""
        return cls([None] * n)

    @classmethod
    def identity(cls, n: int) -> "Matching":
        """input i → output i for all i (useful in tests only; real
        traffic never targets its own port)."""
        return cls(list(range(n)))

    @classmethod
    def cyclic_shift(cls, n: int, shift: int) -> "Matching":
        """input i → output (i + shift) mod n — one TDMA 'frame slot'."""
        return cls([(i + shift) % n for i in range(n)])

    @classmethod
    def from_pairs(cls, n: int, pairs: Iterable[Tuple[int, int]]) -> "Matching":
        """Build from (input, output) pairs; unlisted inputs are dark."""
        out_of: List[Optional[int]] = [None] * n
        for inp, out in pairs:
            if not 0 <= inp < n:
                raise SchedulingError(f"pair input {inp} out of range")
            if out_of[inp] is not None:
                raise SchedulingError(
                    f"input {inp} appears twice in pair list")
            out_of[inp] = out
        return cls(out_of)

    @classmethod
    def from_dict(cls, n: int, mapping: Dict[int, int]) -> "Matching":
        """Build from an {input: output} dict."""
        return cls.from_pairs(n, mapping.items())

    @classmethod
    def from_output_array(cls, array: np.ndarray) -> "Matching":
        """Trusted constructor from an int output vector, ``-1`` = dark.

        Skips the per-entry permutation validation — the **caller**
        guarantees outputs are unique and in range.  Reserved for
        scheduler inner loops that maintain that invariant structurally
        (a masked argmin cannot emit a duplicate column); everything
        else should use the validating constructors.  The array is
        adopted, marked read-only, and becomes the :meth:`as_array`
        cache.
        """
        matching = cls.__new__(cls)
        matching.n = int(array.size)
        matching._out_of = None  # built lazily by _tuple()
        array.setflags(write=False)
        matching._array = array
        return matching

    def _tuple(self) -> Tuple[Optional[int], ...]:
        """The input→output tuple, materialised on first use.

        Trusted construction defers this: the cell fabric consumes one
        matching per slot purely through :meth:`as_array`, and building
        an n-entry tuple it never reads would dominate the slot loop.
        """
        if self._out_of is None:
            self._out_of = tuple(
                None if out < 0 else out for out in self._array.tolist())
        return self._out_of

    # -- queries ---------------------------------------------------------------

    def output_for(self, inp: int) -> Optional[int]:
        """Output matched to ``inp``, or None when dark."""
        return self._tuple()[inp]

    def input_for(self, out: int) -> Optional[int]:
        """Input matched to ``out``, or None (linear scan; n is small)."""
        for inp, mapped in enumerate(self._tuple()):
            if mapped == out:
                return inp
        return None

    def pairs(self) -> Iterator[Tuple[int, int]]:
        """Iterate matched (input, output) pairs."""
        for inp, out in enumerate(self._tuple()):
            if out is not None:
                yield inp, out

    @property
    def size(self) -> int:
        """Number of matched pairs."""
        return sum(1 for out in self._tuple() if out is not None)

    def is_full(self) -> bool:
        """True when every input is matched (a full permutation)."""
        return self.size == self.n

    def as_array(self) -> np.ndarray:
        """Read-only int64 vector of outputs, ``-1`` for dark inputs.

        Cached on first use: the cell fabric indexes VOQ state with this
        once per slot, and rebuilding it per call would put a Python
        loop back on the hot path.
        """
        if self._array is None:
            array = np.fromiter(
                (-1 if out is None else out for out in self._tuple()),
                dtype=np.int64, count=self.n)
            array.setflags(write=False)
            self._array = array
        return self._array

    def to_matrix(self) -> np.ndarray:
        """Boolean n×n matrix; entry [i, j] is True when i → j."""
        matrix = np.zeros((self.n, self.n), dtype=bool)
        for inp, out in self.pairs():
            matrix[inp, out] = True
        return matrix

    def weight(self, demand: np.ndarray) -> float:
        """Total demand served: sum of demand[i, j] over matched pairs."""
        return float(sum(demand[inp, out] for inp, out in self.pairs()))

    # -- dunder ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Matching):
            return NotImplemented
        return self._tuple() == other._tuple()

    def __hash__(self) -> int:
        return hash(self._tuple())

    def __repr__(self) -> str:
        pairs = ", ".join(f"{i}->{o}" for i, o in self.pairs())
        return f"Matching(n={self.n}, [{pairs}])"


__all__ = ["Matching"]
