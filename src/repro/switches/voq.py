"""Virtual Output Queue bank.

An input-queued switch keeps, at each input port, one queue per output
port — the VOQ discipline that avoids head-of-line blocking.  Figure 2's
processing logic "places [packets] into their respective Virtual Output
Queue" and "as the status of a VOQ changes, the subsystem generates
scheduling requests".

:class:`VoqBank` is the n×n bank for the whole switch, with:

* per-VOQ :class:`~repro.switches.buffers.PacketQueue` storage,
* a status-change hook that fires exactly when the paper says requests
  are generated (empty↔non-empty transitions and byte-count changes),
* O(1) demand-matrix snapshots for the scheduling logic.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

import numpy as np

from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.errors import ConfigurationError
from repro.switches.buffers import DropPolicy, PacketQueue


class VoqBank:
    """n×n virtual output queues with demand snapshots.

    Parameters
    ----------
    sim, n_ports:
        Simulator and port count.
    capacity_bytes:
        Per-VOQ byte cap (None = unbounded).  The *aggregate* cap that
        Figure 1 reasons about is enforced by
        :class:`~repro.switches.memory.BufferMemoryMeter` instead, since
        real ToR SRAM is shared.
    on_status_change:
        Called with ``(src, dst, queued_bytes)`` after every enqueue or
        dequeue — the request-generation hook.
    """

    def __init__(self, sim: Simulator, n_ports: int,
                 capacity_bytes: Optional[int] = None,
                 policy: DropPolicy = DropPolicy.TAIL_DROP,
                 on_status_change:
                 Optional[Callable[[int, int, int], None]] = None) -> None:
        if n_ports < 2:
            raise ConfigurationError(f"VoqBank needs >= 2 ports, got {n_ports}")
        self.sim = sim
        self.n_ports = n_ports
        self.on_status_change = on_status_change
        self._capacity_bytes = capacity_bytes
        self._policy = policy
        # Queues materialise on first touch: an n-port bank holds n²−n
        # of them, and at large radix most (src, dst) pairs never carry
        # a packet in a given run — eager construction would dominate
        # framework build time.
        self._queues: List[List[Optional[PacketQueue]]] = [
            [None] * n_ports for __ in range(n_ports)]
        # Dense byte counts for O(n^2) demand snapshots without walking
        # deques, kept in sync by _touch as plain Python ints (a NumPy
        # scalar store costs several times an int list store, and
        # _touch runs twice per packet).  The ndarray views are rebuilt
        # lazily, at most once per snapshot.
        self._byte_rows = [[0] * n_ports for __ in range(n_ports)]
        self._packet_rows = [[0] * n_ports for __ in range(n_ports)]
        self._total = 0
        self._total_packets = 0
        self._peak_total = 0
        # Batched drains subtract a whole run's bytes up front; the
        # occupancy that a per-packet execution would have shown at any
        # later instant is ``_total`` plus the departures still pending
        # *after* that instant.  The heap tracks those so the peak —
        # which can only move at enqueues — stays exact.
        self._pending_departures: List[tuple] = []
        self._future_departed = 0
        # Persistent ndarray view of the byte rows, refreshed row-wise:
        # only inputs touched since the last snapshot are re-written,
        # so the per-epoch snapshot costs O(active inputs · n) instead
        # of a full n² rebuild.
        self._demand_np = np.zeros((n_ports, n_ports), dtype=np.int64)
        self._dirty_rows: set = set()
        #: When True, queues materialise with their per-packet
        #: enqueue/dequeue counters disabled (untraced fast lane).
        self.untraced_counters = False

    # -- access -----------------------------------------------------------------

    def queue(self, src: int, dst: int) -> PacketQueue:
        """The VOQ for (src, dst); raises on the src == dst diagonal."""
        q = self._queues[src][dst]
        if q is None:
            if src == dst:
                raise ConfigurationError(
                    f"no VOQ on diagonal ({src},{src})")
            q = PacketQueue(self.sim, f"voq[{src},{dst}]",
                            capacity_bytes=self._capacity_bytes,
                            policy=self._policy)
            if self.untraced_counters:
                q.enqueues.disable()
                q.dequeues.disable()
            self._queues[src][dst] = q
        return q

    def set_counter_tracing(self, enabled: bool) -> None:
        """Enable/disable enqueue/dequeue counters, bank-wide.

        Applies to every queue materialised so far and (via
        :attr:`untraced_counters`) to queues created later.  Drop
        counters always count — they feed reports.
        """
        self.untraced_counters = not enabled
        for row in self._queues:
            for q in row:
                if q is not None:
                    if enabled:
                        q.enqueues.enable()
                        q.dequeues.enable()
                    else:
                        q.enqueues.disable()
                        q.dequeues.disable()

    # -- operations --------------------------------------------------------------

    def enqueue(self, packet: Packet) -> bool:
        """Place ``packet`` into VOQ (packet.src, packet.dst).

        Returns False if tail-dropped.  Fires the status hook either way
        a real request generator watches occupancy, and a drop changes
        nothing.
        """
        q = self.queue(packet.src, packet.dst)
        accepted = q.enqueue(packet)
        if accepted:
            self._touch(packet.src, packet.dst)
        return accepted

    def dequeue(self, src: int, dst: int) -> Packet:
        """Remove the head packet of VOQ (src, dst)."""
        q = self.queue(src, dst)
        packet = q.dequeue()
        self._touch(src, dst)
        return packet

    def dequeue_run(self, src: int, dst: int,
                    times: List[int]) -> List[Packet]:
        """Dequeue a drain run from VOQ (src, dst), stamped at ``times``.

        Equivalent to calling :meth:`dequeue` at each ``times[i]``,
        with the bank accounting paid once.  The status hook is *not*
        fired — callers use this only when nothing listens (the batched
        drain gates on that).  Departures at future instants are
        registered so :meth:`peak_total_bytes` remains exact.
        """
        q = self.queue(src, dst)
        packets = q.popleft_run(times)
        row = self._byte_rows[src]
        queued = q.bytes
        self._total += queued - row[dst]
        row[dst] = queued
        self._dirty_rows.add(src)
        packet_row = self._packet_rows[src]
        self._total_packets += len(q) - packet_row[dst]
        packet_row[dst] = len(q)
        now = self.sim.now
        pending = self._pending_departures
        for when, packet in zip(times, packets):
            if when > now:
                heapq.heappush(pending, (when, packet.size))
                self._future_departed += packet.size
        return packets

    def head(self, src: int, dst: int) -> Optional[Packet]:
        """Peek the head packet of VOQ (src, dst)."""
        q = self._queues[src][dst]
        if q is None:
            if src == dst:
                raise ConfigurationError(
                    f"no VOQ on diagonal ({src},{src})")
            return None
        return q.head()

    def is_empty(self, src: int, dst: int) -> bool:
        """True when VOQ (src, dst) holds no packets."""
        q = self._queues[src][dst]
        if q is None:
            if src == dst:
                raise ConfigurationError(
                    f"no VOQ on diagonal ({src},{src})")
            return True
        return q.is_empty

    # -- aggregate views ------------------------------------------------------------

    def demand_bytes(self) -> np.ndarray:
        """n×n matrix of queued bytes (a copy; callers may mutate)."""
        if self._dirty_rows:
            demand = self._demand_np
            rows = self._byte_rows
            for src in self._dirty_rows:
                demand[src] = rows[src]
            self._dirty_rows.clear()
        return self._demand_np.copy()

    def demand_packets(self) -> np.ndarray:
        """n×n matrix of queued packet counts (a copy)."""
        return np.array(self._packet_rows, dtype=np.int64)

    @property
    def total_bytes(self) -> int:
        """Total bytes stored across the whole bank."""
        return self._total

    @property
    def total_packets(self) -> int:
        """Total packets stored across the whole bank."""
        return self._total_packets

    def peak_total_bytes(self) -> int:
        """Peak simultaneous occupancy — the Figure 1 measurement.

        Exact, not sampled: recomputed from per-queue step series would
        be expensive, so the bank tracks the running aggregate in
        :meth:`_touch`.
        """
        return self._peak_total

    def nonempty_voqs(self) -> List[tuple]:
        """(src, dst) of every backlogged VOQ."""
        return [(src, dst)
                for src, row in enumerate(self._packet_rows)
                for dst, count in enumerate(row) if count]

    def drops_total(self) -> int:
        """Total packets tail-dropped across the bank."""
        return sum(q.drops.count
                   for row in self._queues for q in row if q is not None)

    # -- internals ---------------------------------------------------------------------

    def _touch(self, src: int, dst: int) -> None:
        q = self._queues[src][dst]
        assert q is not None
        queued = q.bytes
        row = self._byte_rows[src]
        self._total += queued - row[dst]
        row[dst] = queued
        self._dirty_rows.add(src)
        packet_row = self._packet_rows[src]
        self._total_packets += len(q) - packet_row[dst]
        packet_row[dst] = len(q)
        occupancy = self._total
        if self._future_departed:
            # Settle batched departures that have now "happened"; what
            # remains is occupancy a per-packet execution would still
            # be holding at this instant.
            pending = self._pending_departures
            now = self.sim.now
            while pending and pending[0][0] <= now:
                self._future_departed -= heapq.heappop(pending)[1]
            occupancy += self._future_departed
        if occupancy > self._peak_total:
            self._peak_total = occupancy
        if self.on_status_change is not None:
            self.on_status_change(src, dst, queued)


__all__ = ["VoqBank"]
