"""iSLIP — round-robin iterative matching (McKeown, ToN 1999).

The workhorse of commercial input-queued switches and the algorithm a
NetFPGA scheduling-logic block would most plausibly host: deterministic,
O(1) per-port state (two rotating pointers), and one request/grant/
accept round per clock with trivial combinational logic.

Differences from PIM:

* Grant and accept choices are *round-robin from a pointer*, not random.
* Pointers advance **only when the grant is accepted in the first
  iteration**.  This "pointer desynchronisation" property is what lifts
  throughput to 100 % under uniform traffic where PIM-1 saturates at
  ~63 % — reproduced in E5.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.schedulers.base import Scheduler, ScheduleResult
from repro.schedulers.matching import Matching


class IslipScheduler(Scheduler):
    """iSLIP with ``iterations`` rounds and persistent pointers.

    The pointers persist across :meth:`compute` calls, as in hardware —
    resetting them each slot would destroy the desynchronisation effect.
    """

    name = "islip"

    def __init__(self, n_ports: int, iterations: int = 1) -> None:
        super().__init__(n_ports)
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        self.iterations = iterations
        #: Grant pointer per output: next input to favour.
        self.grant_ptr = [0] * n_ports
        #: Accept pointer per input: next output to favour.
        self.accept_ptr = [0] * n_ports

    def reset_pointers(self) -> None:
        """Re-zero both pointer arrays (tests / fresh epochs)."""
        self.grant_ptr = [0] * self.n_ports
        self.accept_ptr = [0] * self.n_ports

    @staticmethod
    def _round_robin_pick(candidates: List[int], pointer: int,
                          n: int) -> int:
        """First candidate at or after ``pointer`` (mod n)."""
        best = None
        best_rank = n
        for candidate in candidates:
            rank = (candidate - pointer) % n
            if rank < best_rank:
                best_rank = rank
                best = candidate
        assert best is not None
        return best

    def compute(self, demand: np.ndarray) -> ScheduleResult:
        demand = self._check_demand(demand)
        n = self.n_ports
        matched_out: Dict[int, int] = {}
        matched_in: Dict[int, int] = {}
        rounds_used = 0
        for iteration in range(self.iterations):
            rounds_used += 1
            progress = False
            # Grant phase: each unmatched output picks the requesting
            # input nearest its pointer.
            grants: Dict[int, List[int]] = {}
            granted_by: Dict[int, int] = {}
            for out in range(n):
                if out in matched_in:
                    continue
                requesters = [
                    inp for inp in range(n)
                    if inp not in matched_out and demand[inp, out] > 0
                ]
                if not requesters:
                    continue
                chosen = self._round_robin_pick(
                    requesters, self.grant_ptr[out], n)
                grants.setdefault(chosen, []).append(out)
                granted_by[out] = chosen
            # Accept phase: each input picks the granting output nearest
            # its pointer.
            for inp, granting in grants.items():
                accepted = self._round_robin_pick(
                    granting, self.accept_ptr[inp], n)
                matched_out[inp] = accepted
                matched_in[accepted] = inp
                progress = True
                if iteration == 0:
                    # Pointer update rule: one past the matched partner,
                    # only for first-iteration matches.
                    self.grant_ptr[accepted] = (inp + 1) % n
                    self.accept_ptr[inp] = (accepted + 1) % n
            if not progress:
                break
        out_of: List[Optional[int]] = [matched_out.get(i) for i in range(n)]
        self.last_stats = {"iterations": rounds_used, "matchings": 1}
        return ScheduleResult(matchings=[(Matching(out_of), 0)])


__all__ = ["IslipScheduler"]
