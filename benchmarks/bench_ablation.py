"""Ablation benches for the design choices DESIGN.md calls out.

Four ablations, each isolating one knob of the framework:

* **iSLIP iteration count** — matching quality vs hardware cost.
* **Demand estimator** (instant / EWMA / sketch) inside the full
  framework — does estimation error reach end-to-end utilisation?
* **EPS residual capacity** — how thin can the electrical path be
  before residue backs up?
* **Distributed scheduling staleness** — what decentralising the
  scheduler costs in matching weight as its demand view ages.
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.control.distributed import DistributedGreedyScheduler
from repro.core.config import FrameworkConfig
from repro.core.framework import HybridSwitchFramework
from repro.fabric.cellsim import CellFabricSim
from repro.fabric.workloads import diagonal_rates
from repro.schedulers.islip import IslipScheduler
from repro.schedulers.mwm import MwmScheduler
from repro.sim.time import GIGABIT, MICROSECONDS, MILLISECONDS
from repro.traffic.patterns import HotspotDestination
from repro.traffic.sources import OnOffSource


def _hotspot_framework(estimator="instant", eps_rate=2.5 * GIGABIT,
                       seed=17):
    config = FrameworkConfig(
        n_ports=8,
        switching_time_ps=20 * MICROSECONDS,
        scheduler="hotspot",
        scheduler_kwargs={"threshold_bytes": 20_000.0},
        timing_preset="netfpga_sume",
        estimator=estimator,
        epoch_ps=200 * MICROSECONDS,
        default_slot_ps=160 * MICROSECONDS,
        eps_rate_bps=eps_rate,
        seed=seed,
    )
    fw = HybridSwitchFramework(config)
    for host in fw.hosts:
        OnOffSource(
            fw.sim, host,
            burst_rate_bps=0.6 * config.port_rate_bps,
            mean_on_ps=200 * MICROSECONDS,
            mean_off_ps=250 * MICROSECONDS,
            chooser=HotspotDestination(
                8, host.host_id, skew=0.7,
                rng=fw.sim.streams.stream(f"d{host.host_id}")),
            rng=fw.sim.streams.stream(f"s{host.host_id}"))
    return fw


def test_ablation_islip_iterations(benchmark):
    """Throughput vs iteration count on adversarial load."""

    def run():
        rows = []
        series = {}
        for iterations in (1, 2, 4, 8):
            sched = IslipScheduler(16, iterations=iterations)
            stats = CellFabricSim(sched, diagonal_rates(16, 0.9),
                                  seed=6).run(3_000, warmup=500)
            series[iterations] = stats.throughput
            rows.append([str(iterations), f"{stats.throughput:.3f}",
                         f"{stats.mean_delay_slots:.1f}"])
        print()
        print(render_table(
            ["iSLIP iterations", "throughput", "mean delay (slots)"],
            rows, title="ablation: iSLIP iterations, diagonal 0.9"))
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    assert series[4] >= series[1] - 0.02


def test_ablation_demand_estimator(benchmark):
    """Does estimator choice reach end-to-end OCS offload?"""

    def run():
        rows = []
        fractions = {}
        for estimator in ("instant", "ewma", "sketch"):
            fw = _hotspot_framework(estimator=estimator)
            result = fw.run(6 * MILLISECONDS)
            fractions[estimator] = result.ocs_fraction
            rows.append([estimator, f"{result.ocs_fraction:.3f}",
                         f"{result.utilisation():.3f}"])
        print()
        print(render_table(
            ["estimator", "OCS byte fraction", "utilisation"],
            rows, title="ablation: demand estimator in the framework"))
        return fractions

    fractions = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(0.0 <= f <= 1.0 for f in fractions.values())


def test_ablation_eps_capacity(benchmark):
    """Residual-path provisioning: EPS rate from 10G down to 0.5G."""

    def run():
        rows = []
        peaks = {}
        for eps_gbps in (10.0, 2.5, 1.0, 0.5):
            fw = _hotspot_framework(eps_rate=eps_gbps * GIGABIT)
            result = fw.run(6 * MILLISECONDS)
            peaks[eps_gbps] = result.eps_peak_buffer_bytes
            rows.append([f"{eps_gbps:.1f}G",
                         f"{result.utilisation():.3f}",
                         str(result.eps_peak_buffer_bytes),
                         str(result.drops["eps_tail"])])
        print()
        print(render_table(
            ["EPS rate", "utilisation", "peak EPS queue (B)",
             "EPS drops"],
            rows, title="ablation: residual electrical capacity"))
        return peaks

    peaks = benchmark.pedantic(run, rounds=1, iterations=1)
    # A thinner residual path must queue at least as much residue.
    assert peaks[0.5] >= peaks[10.0]


def test_ablation_distributed_staleness(benchmark):
    """Matching weight lost to stale demand views (decentralisation)."""

    def run():
        rng = np.random.default_rng(11)
        # A drifting demand sequence: hotspots move every few epochs.
        demands = []
        base = rng.exponential(50_000, (8, 8))
        np.fill_diagonal(base, 0.0)
        for epoch in range(40):
            drift = np.roll(base, epoch // 4, axis=1).copy()
            np.fill_diagonal(drift, 0.0)
            demands.append(drift)
        central = MwmScheduler(8)
        rows = []
        ratios = {}
        for staleness in (0, 1, 2, 4, 8):
            distributed = DistributedGreedyScheduler(
                8, staleness_epochs=staleness)
            got = 0.0
            best = 0.0
            for demand in demands:
                got += distributed.compute(demand).first.weight(demand)
                best += central.compute(demand).first.weight(demand)
            ratios[staleness] = got / best
            rows.append([str(staleness), f"{got / best:.3f}"])
        print()
        print(render_table(
            ["staleness (epochs)", "weight vs centralized MWM"],
            rows, title="ablation: distributed scheduling staleness"))
        return ratios

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    assert ratios[8] <= ratios[0] + 1e-9  # staleness never helps
