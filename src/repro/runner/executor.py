"""Job execution: sequential or ``multiprocessing``, same bits.

The executor runs a planned list of specs and returns one
:class:`RunOutcome` per spec, in spec order.  Three properties the rest
of the system leans on:

* **Bit-identity** — a job's report depends only on its spec.  Every
  RNG an experiment touches is seeded from the spec, and both paths
  reset the one piece of process-global state the simulator owns (the
  packet-id counter) before each job, so ``--jobs N`` output is
  byte-identical to ``--jobs 1`` regardless of which worker ran what.
* **Cache short-circuit** — with a :class:`ResultCache`, hits never
  reach a worker; a fully warm run executes zero experiments.
* **Order preservation** — outcomes line up with the input specs, so
  callers can zip plans with results regardless of completion order.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from dataclasses import dataclass
from typing import (
    Callable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.experiments.base import ExperimentReport
from repro.net.packet import reset_packet_ids
from repro.runner.cache import ResultCache
from repro.runner.spec import RunSpec

T = TypeVar("T")
R = TypeVar("R")

#: ``fork`` keeps worker start cheap and — unlike ``spawn`` — does not
#: re-execute ``__main__``, so on Linux the executor is safe to call
#: from any host program (REPLs, pytest, piped scripts).  Everywhere
#: else we follow CPython's own default: macOS offers fork but is
#: fork-unsafe once BLAS/framework threads exist in the parent (the
#: reason 3.8 switched darwin to spawn), and Windows has no fork.
#: Under ``spawn``, callers need the standard
#: ``if __name__ == "__main__"`` guard.
_START_METHOD = "fork" if sys.platform == "linux" else "spawn"


@dataclass
class RunOutcome:
    """One executed (or cache-served) job."""

    spec: RunSpec
    report: ExperimentReport
    cached: bool
    elapsed_s: float  # wall time of this execution; 0.0 for cache hits


def _run_one(spec: RunSpec) -> Tuple[ExperimentReport, float]:
    """Execute a single spec in a fresh deterministic context.

    Dispatches on the job family: ``scenario:<name>`` specs resolve
    against the scenario registry, everything else against the
    experiment entry points.  Top-level so it pickles under the
    ``spawn`` start method.
    """
    reset_packet_ids()
    start = time.perf_counter()
    scenario_name = spec.scenario_name
    if scenario_name is not None:
        from repro.scenario import get_scenario, run_scenario

        report = run_scenario(get_scenario(scenario_name),
                              spec.to_config())
    else:
        from repro.experiments import ENTRY_POINTS

        report = ENTRY_POINTS[spec.experiment_id](spec.to_config())
    return report, time.perf_counter() - start


def map_jobs(fn: Callable[[T], R], items: Sequence[T],
             jobs: int = 1) -> List[R]:
    """Order-preserving map, optionally across worker processes.

    The generic primitive under :func:`execute`, also used directly by
    benchmark drivers (``benchmarks/bench_ablation.py``) to fan their
    per-knob runs out without changing result order.  ``fn`` must be a
    module-level callable when ``jobs > 1`` (pool pickling).
    """
    return list(imap_jobs(fn, items, jobs=jobs))


def imap_jobs(fn: Callable[[T], R], items: Sequence[T],
              jobs: int = 1) -> Iterator[R]:
    """Like :func:`map_jobs`, but yields results as they arrive.

    Results come back in item order (workers may finish out of order;
    delivery is still ordered).  Streaming matters for failure
    behaviour: everything yielded before a job raises has already been
    consumed by the caller — e.g. stored in the result cache — rather
    than discarded with the batch.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1 or len(items) <= 1:
        for item in items:
            yield fn(item)
        return
    ctx = multiprocessing.get_context(_START_METHOD)
    with ctx.Pool(processes=min(jobs, len(items))) as pool:
        yield from pool.imap(fn, items)


def execute(
    specs: Sequence[RunSpec],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    on_outcome: Optional[Callable[[RunOutcome], None]] = None,
) -> List[RunOutcome]:
    """Run every spec; outcomes are returned in spec order.

    ``on_outcome`` fires once per job as results settle (cache hits
    first, then executed jobs in plan order as they stream back) —
    for progress lines, not ordering.  Executed reports are stored to
    the cache as they arrive, so a job failing late in a long run
    never discards the completed work before it.
    """
    outcomes: List[Optional[RunOutcome]] = [None] * len(specs)
    pending: List[int] = []
    for index, spec in enumerate(specs):
        report = cache.load(spec) if cache is not None else None
        if report is not None:
            outcomes[index] = RunOutcome(spec, report, cached=True,
                                         elapsed_s=0.0)
            if on_outcome:
                on_outcome(outcomes[index])
        else:
            pending.append(index)
    results = imap_jobs(_run_one, [specs[i] for i in pending], jobs=jobs)
    for index, (report, elapsed) in zip(pending, results):
        outcome = RunOutcome(specs[index], report, cached=False,
                             elapsed_s=elapsed)
        if cache is not None:
            cache.store(outcome.spec, outcome.report)
        outcomes[index] = outcome
        if on_outcome:
            on_outcome(outcome)
    return list(outcomes)  # type: ignore[arg-type]


__all__ = ["RunOutcome", "execute", "map_jobs", "imap_jobs"]
