"""E5 — scheduling-algorithm study on the cell fabric.

§3 positions the framework as an enabler for "rapid prototyping,
exploration and evaluation of novel hybrid schedulers".  This experiment
is the evaluation such a user would run first: the textbook crossbar
curves, throughput and mean delay vs offered load, for the algorithm
library, under uniform and adversarial (diagonal) traffic.

Expected shapes (the literature's, which our implementations must hit):

* Under uniform traffic iSLIP reaches ~100 % throughput; PIM-1
  saturates near 63 % (the 1 − 1/e limit); TDMA also serves uniform
  load perfectly (it *is* the uniform schedule).
* Under diagonal traffic TDMA collapses (it wastes slots on pairs with
  no demand), PIM/iSLIP-1 degrade, iSLIP-4 recovers much of it, and
  MWM stays near the admissible bound.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import random

from repro.analysis.charts import line_chart
from repro.analysis.tables import render_table
from repro.experiments.base import ExperimentConfig, ExperimentReport
from repro.fabric.cellsim import CellFabricSim
from repro.fabric.workloads import diagonal_rates, uniform_rates
from repro.schedulers.fixed import RoundRobinTdma
from repro.schedulers.islip import IslipScheduler
from repro.schedulers.mwm import MwmScheduler
from repro.schedulers.pim import PimScheduler
from repro.schedulers.wfa import WfaScheduler

N_PORTS = 16

#: Overrides this experiment honours (``repro run e5 --set ...``).
KNOWN_OVERRIDES = frozenset({"loads", "slots", "warmup", "n_ports"})


def _make_schedulers(n_ports: int,
                     pim_seed: int) -> List[Tuple[str, object]]:
    return [
        ("tdma", RoundRobinTdma(n_ports)),
        ("pim-1", PimScheduler(n_ports, iterations=1,
                               rng=random.Random(pim_seed))),
        ("islip-1", IslipScheduler(n_ports, iterations=1)),
        ("islip-4", IslipScheduler(n_ports, iterations=4)),
        ("wfa", WfaScheduler(n_ports)),
        ("mwm", MwmScheduler(n_ports)),
    ]


def _curve(workload, loads, slots, warmup, seed: int, n_ports: int,
           pim_seed: int) -> Dict[str, List[Tuple[float, float, float]]]:
    """name -> [(load, throughput, mean delay)] per algorithm."""
    curves: Dict[str, List[Tuple[float, float, float]]] = {}
    for load in loads:
        rates = workload(n_ports, load)
        for name, scheduler in _make_schedulers(n_ports, pim_seed):
            sim = CellFabricSim(scheduler, rates, seed=seed)
            stats = sim.run(slots=slots, warmup=warmup)
            curves.setdefault(name, []).append(
                (load, stats.throughput, stats.mean_delay_slots))
    return curves


def _table_for(curves, loads, metric_index: int, metric: str,
               title: str) -> str:
    names = list(curves)
    rows = []
    for i, load in enumerate(loads):
        row = [f"{load:.2f}"]
        for name in names:
            row.append(f"{curves[name][i][metric_index]:.3f}")
        rows.append(row)
    return render_table(["load"] + names, rows, title=f"{title} — {metric}")


def run(config: ExperimentConfig) -> ExperimentReport:
    """Throughput & delay vs load, uniform and diagonal workloads."""
    report = ExperimentReport(
        experiment_id="e5",
        title="scheduler-algorithm study (the framework's purpose)",
    )
    report.check_overrides(config, KNOWN_OVERRIDES)
    loads = list(config.get(
        "loads", [0.3, 0.6, 0.9] if config.quick
        else [0.1, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95]))
    slots = config.get("slots", 1_500 if config.quick else 8_000)
    warmup = config.get("warmup", 300 if config.quick else 1_500)
    n_ports = config.get("n_ports", N_PORTS)
    seed = config.derive_seed(2)
    pim_seed = config.derive_seed(5)
    uniform_curves = _curve(uniform_rates, loads, slots, warmup,
                            seed=seed, n_ports=n_ports, pim_seed=pim_seed)
    diagonal_curves = _curve(diagonal_rates, loads, slots, warmup,
                             seed=seed, n_ports=n_ports, pim_seed=pim_seed)
    report.tables.append(_table_for(
        uniform_curves, loads, 1, "throughput",
        f"uniform traffic, {n_ports} ports"))
    report.tables.append(_table_for(
        uniform_curves, loads, 2, "mean delay (slots)",
        f"uniform traffic, {n_ports} ports"))
    report.tables.append(_table_for(
        diagonal_curves, loads, 1, "throughput",
        f"diagonal traffic, {n_ports} ports"))
    report.tables.append(_table_for(
        diagonal_curves, loads, 2, "mean delay (slots)",
        f"diagonal traffic, {n_ports} ports"))
    report.tables.append(line_chart(
        loads,
        {name: [point[1] for point in series]
         for name, series in diagonal_curves.items()},
        width=48, height=12,
        x_label="offered load", y_label="throughput",
        title="diagonal traffic — throughput vs load (figure form)"))
    report.data["uniform"] = uniform_curves
    report.data["diagonal"] = diagonal_curves
    # Paper-shape checks at the heaviest common load.
    last = len(loads) - 1
    islip_uniform = uniform_curves["islip-1"][last][1]
    pim_uniform = uniform_curves["pim-1"][last][1]
    if islip_uniform > pim_uniform:
        report.expectations.append(
            f"uniform@{loads[last]:.2f}: iSLIP-1 throughput "
            f"{islip_uniform:.3f} > PIM-1 {pim_uniform:.3f} "
            "(pointer desynchronisation beats random)")
    mwm_diag = diagonal_curves["mwm"][last][1]
    tdma_diag = diagonal_curves["tdma"][last][1]
    if mwm_diag > tdma_diag:
        report.expectations.append(
            f"diagonal@{loads[last]:.2f}: MWM throughput {mwm_diag:.3f} "
            f"> TDMA {tdma_diag:.3f} (demand-aware beats oblivious on "
            "skew)")
    islip4_diag = diagonal_curves["islip-4"][last][1]
    islip1_diag = diagonal_curves["islip-1"][last][1]
    if islip4_diag >= islip1_diag:
        report.expectations.append(
            f"diagonal@{loads[last]:.2f}: iSLIP-4 ({islip4_diag:.3f}) "
            f">= iSLIP-1 ({islip1_diag:.3f}) — iterations help on skew")
    return report


def run_e5(quick: bool = False) -> ExperimentReport:
    """Historical entry point; see :func:`run`."""
    return run(ExperimentConfig(quick=quick))


__all__ = ["run", "run_e5", "N_PORTS", "KNOWN_OVERRIDES"]
