"""The hybrid-switch framework: Figure 2, assembled and runnable.

:class:`HybridSwitchFramework` is the top-level object a user of this
library touches: give it a :class:`~repro.core.config.FrameworkConfig`,
attach traffic, call :meth:`run`, get a
:class:`~repro.core.results.RunResult`.

    from repro import FrameworkConfig, HybridSwitchFramework
    from repro.traffic import PoissonSource

    config = FrameworkConfig(n_ports=8, scheduler="islip")
    framework = HybridSwitchFramework(config)
    for host in framework.hosts:
        PoissonSource(framework.sim, host, rate_bps=4e9,
                      rng=framework.sim.streams.stream(f"src{host.host_id}"))
    result = framework.run(duration_ps=2 * MILLISECONDS)

The construction order mirrors the paper's partition: hosts and links
(the "tens of processing elements"), then switching logic (OCS + EPS),
then processing logic, then the scheduling logic plugged in last — the
part a researcher would swap.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.analysis.record import PacketLog
from repro.core.config import FrameworkConfig
from repro.core.processing import ProcessingLogic
from repro.core.results import RunResult
from repro.core.scheduling import SchedulingLogic
from repro.core.switching import SwitchingLogic
from repro.hwmodel.presets import make_timing
from repro.hwmodel.timing import SchedulerTiming
from repro.net.classifier import FlowClassifier
from repro.net.topology import build_rack
from repro.schedulers.base import Scheduler
from repro.schedulers.demand import (
    DemandEstimator,
    EwmaEstimator,
    InstantEstimator,
    SketchEstimator,
)
from repro.schedulers.registry import create_scheduler
from repro.sim.engine import Simulator
from repro.sim.errors import ConfigurationError
from repro.switches.eps import ElectricalPacketSwitch
from repro.switches.ocs import OpticalCircuitSwitch


def _make_estimator(config: FrameworkConfig) -> DemandEstimator:
    if config.estimator == "instant":
        return InstantEstimator(config.n_ports, **config.estimator_kwargs)
    if config.estimator == "ewma":
        return EwmaEstimator(config.n_ports, **config.estimator_kwargs)
    if config.estimator == "sketch":
        return SketchEstimator(config.n_ports, seed=config.seed,
                               **config.estimator_kwargs)
    raise ConfigurationError(f"unknown estimator {config.estimator!r}")


class HybridSwitchFramework:
    """One rack, one hybrid switch, one pluggable scheduler.

    Parameters
    ----------
    config:
        Declarative experiment description.
    scheduler:
        Pre-built scheduler instance; overrides ``config.scheduler``.
        This is the rapid-prototyping hook: hand in anything satisfying
        :class:`~repro.schedulers.base.Scheduler`.
    timing:
        Pre-built timing model; overrides ``config.timing_preset``.
    classifier:
        Custom look-up rule table for the processing logic.
    optimistic_grant:
        Ablation flag — see :class:`~repro.core.scheduling.SchedulingLogic`.
    packet_lane:
        ``"columnar"`` (default) arms the packet-path fast lane:
        per-host :class:`~repro.analysis.record.PacketLog` telemetry
        instead of retained ``Packet`` objects, eager egress delivery
        (the downlink's per-packet arrival event collapses into the
        send), and eager OCS transit where provably exact.  All
        observable results are identical to ``"reference"``, which
        keeps the original per-packet/per-object path end to end.
    """

    def __init__(self, config: FrameworkConfig,
                 scheduler: Optional[Scheduler] = None,
                 timing: Optional[SchedulerTiming] = None,
                 classifier: Optional[FlowClassifier] = None,
                 optimistic_grant: bool = False,
                 packet_lane: str = "columnar") -> None:
        if packet_lane not in ("columnar", "reference"):
            raise ConfigurationError(
                f"unknown packet_lane {packet_lane!r}; expected "
                "'columnar' or 'reference'")
        self.config = config
        self.packet_lane = packet_lane
        self.sim = Simulator(seed=config.seed)
        self.topology = build_rack(
            self.sim, config.n_ports,
            link_rate_bps=config.port_rate_bps,
            propagation_ps=config.propagation_ps,
            mode=config.buffer_mode,
            clock_skew_ps=config.host_clock_skew_ps)
        self.ocs = OpticalCircuitSwitch(
            self.sim, config.n_ports,
            switching_time_ps=config.switching_time_ps)
        self.eps = ElectricalPacketSwitch(
            self.sim, config.n_ports,
            port_rate_bps=config.eps_rate_bps,
            queue_capacity_bytes=config.eps_queue_bytes)
        self.switching = SwitchingLogic(
            self.sim, self.ocs, self.eps, self.topology.downlinks)
        self.processing = ProcessingLogic(
            self.sim, config.n_ports,
            port_rate_bps=config.port_rate_bps,
            mode=config.buffer_mode,
            classifier=classifier,
            voq_capacity_bytes=config.voq_capacity_bytes,
            ocs_sink=self.switching.send_ocs,
            eps_sink=self.switching.send_eps)
        for uplink in self.topology.uplinks:
            uplink.connect(self.processing.ingress)
        self.scheduler = scheduler or create_scheduler(
            config.scheduler, n_ports=config.n_ports,
            **config.scheduler_kwargs)
        self.timing = timing or make_timing(config.timing_preset)
        self.estimator = _make_estimator(config)
        if config.estimator == "sketch":
            # Sketch estimation counts the packet stream, not queue
            # occupancy; tap the processing logic's ingress.  Occupancy
            # estimators are snapshot-driven and must NOT also see the
            # stream (they would double-count queued arrivals).
            self.processing.on_observe = self.estimator.observe
        self.scheduling = SchedulingLogic(
            self.sim, self.scheduler, self.timing, self.estimator,
            self.processing, self.switching,
            hosts=self.topology.hosts,
            mode=config.buffer_mode,
            epoch_ps=config.epoch_ps,
            default_slot_ps=config.default_slot_ps,
            control_delay_ps=config.control_delay_ps,
            optimistic_grant=optimistic_grant)
        if packet_lane == "columnar":
            self._arm_fast_lane()
        self._ran = False

    def _arm_fast_lane(self) -> None:
        """Wire the columnar telemetry + eager egress fast paths.

        Hosts log deliveries into per-host ``PacketLog`` columns (host
        order is preserved at collection, so the merged log equals the
        reference path's per-host concatenation row for row).  Each
        downlink delivers eagerly into its host — valid because the
        receive side is a pure telemetry sink; the guard re-checks the
        delivery hook per packet.  The OCS commits its egress sends at
        receive time when no EPS drain could interleave inside the
        transit window (an EPS send it *newly* originates is at least a
        pipeline plus one frame serialisation away, far beyond the
        transit delay).
        """
        eps = self.eps
        ocs = self.ocs
        sim = self.sim
        downlinks = self.topology.downlinks
        for host, downlink in zip(self.topology.hosts, downlinks):
            host.use_packet_log(PacketLog())
            downlink.set_eager_sink(
                host.receive_at,
                guard=_no_hook_guard(host))
        # Guard on full EPS quiescence, not just "no active drain":
        # a packet already in the EPS ingress pipeline could reach its
        # output queue and serialise a sub-transit-sized frame onto
        # the shared downlink inside the transit window.
        ocs.enable_eager_transit(
            downlinks,
            guard=lambda port: eps.is_quiescent)
        if not self.scheduling.optimistic_grant:
            def drain_gate(dst: int) -> bool:
                return (eps.is_quiescent
                        and not ocs.unstable
                        and sim.run_until is not None
                        and sim.now >= ocs._dark_until
                        and downlinks[dst].can_presend())

            self.processing.enable_drain_batching(
                self.switching.send_ocs_batch, drain_gate)
        self._untraced = self._collect_diagnostic_counters()
        for counter in self._untraced:
            counter.disable()
        # VOQ queues materialise lazily, so their counters can't be
        # collected up front; the bank disables them at creation.
        self.processing.voqs.set_counter_tracing(False)

    def _collect_diagnostic_counters(self):
        """Counters that feed only diagnostics/audits, never reports.

        The fast lane runs untraced by default — roughly ten of these
        fire per packet, and none of their values reach an experiment
        report (drop counters, host ``emitted`` and grant counts do,
        and stay enabled).  :meth:`enable_observability` turns them
        back on for audited runs.
        """
        counters = []
        for host in self.topology.hosts:
            counters.append(host.received)
            counters.append(host.sent_on_grant)
        for link in self.topology.uplinks + self.topology.downlinks:
            counters.append(link.accepted)
            counters.append(link.delivered)
        processing = self.processing
        counters.extend([processing.requests_generated,
                         processing.to_ocs, processing.to_eps])
        counters.append(self.ocs.forwarded)
        counters.extend([self.eps.received, self.eps.forwarded])
        for port in range(self.config.n_ports):
            queue = self.eps.queue(port)
            counters.append(queue.enqueues)
            counters.append(queue.dequeues)
        return counters

    def enable_observability(self) -> None:
        """Turn per-packet diagnostics back on (auditors call this).

        Re-enables the untraced counters and drops the batched drain,
        whose bulk fabric entry would bypass packet-level instrument
        wrappers (eager delivery and transit stay on — they route
        through the same per-packet entry points).  Must be called
        before ``run()`` so counts are complete.
        """
        for counter in getattr(self, "_untraced", ()):
            counter.enable()
        self.processing.voqs.set_counter_tracing(True)
        self.processing.disable_drain_batching()

    # -- conveniences -------------------------------------------------------------

    @property
    def hosts(self):
        """The rack's hosts (attach traffic sources to these)."""
        return self.topology.hosts

    @property
    def n_ports(self) -> int:
        """Switch radix."""
        return self.config.n_ports

    # -- execution -------------------------------------------------------------------

    def run(self, duration_ps: int) -> RunResult:
        """Start the scheduling loop, simulate, and collect results."""
        if self._ran:
            raise ConfigurationError(
                "framework instances are single-shot; build a new one "
                "per run so results stay attributable")
        if duration_ps <= 0:
            raise ConfigurationError("duration must be positive")
        self._ran = True
        self.scheduling.start()
        self.sim.run(until=duration_ps)
        return self._collect(duration_ps)

    def _collect(self, duration_ps: int) -> RunResult:
        logs = [host.packet_log for host in self.hosts]
        merged = (PacketLog.concatenate(logs)
                  if all(log is not None for log in logs) and logs
                  else None)
        result = RunResult(
            duration_ps=duration_ps,
            n_ports=self.config.n_ports,
            port_rate_bps=self.config.port_rate_bps,
            log=merged,
        )
        for host in self.hosts:
            result.offered_packets += host.emitted.count
            result.offered_bytes += host.emitted.bytes
        if merged is not None:
            result.delivered_bytes = merged.total_bytes()
            result.ocs_bytes = merged.via_bytes("ocs")
            result.eps_bytes = merged.via_bytes("eps")
        else:
            for host in self.hosts:
                result.delivered.extend(host.delivered_packets)
            result.delivered_bytes = sum(p.size for p in result.delivered)
            result.ocs_bytes = sum(p.size for p in result.delivered
                                   if p.via == "ocs")
            result.eps_bytes = sum(p.size for p in result.delivered
                                   if p.via == "eps")
        result.drops = {
            "voq_tail": self.processing.voqs.drops_total(),
            "eps_tail": self.eps.drops_total(),
            "ocs_dark": self.ocs.dark_drops.count,
            "ocs_misdirected": self.ocs.misdirected_drops.count,
            "classifier": self.processing.classified_drops.count,
            "link_fault": sum(
                link.fault_drops.count
                for link in (self.topology.uplinks
                             + self.topology.downlinks)),
        }
        result.switch_peak_buffer_bytes = \
            self.processing.voqs.peak_total_bytes()
        result.host_peak_buffer_bytes = sum(
            host.peak_queued_bytes for host in self.hosts)
        result.eps_peak_buffer_bytes = self.eps.peak_queue_bytes()
        result.epochs_run = self.scheduling.epochs_run
        result.grants_issued = self.scheduling.grants_issued.count
        result.mean_loop_latency_ps = \
            self.scheduling.mean_loop_latency_ps()
        result.ocs_reconfigurations = self.ocs.reconfigurations
        result.ocs_blackout_ps = self.ocs.blackout_ps
        return result


def _no_hook_guard(host) -> Callable[[], bool]:
    """Eager delivery is valid only while no delivery hook is set."""
    def guard() -> bool:
        return host.on_deliver is None
    return guard


__all__ = ["HybridSwitchFramework"]
