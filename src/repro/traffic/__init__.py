"""Traffic generators — the workloads the testbed would replay.

The paper motivates hybrid switching with two traffic classes: "long
bursts" that belong on circuits and "the remaining traffic and short
bursts" for the EPS, plus latency-sensitive streams (VOIP, gaming)
whose jitter the scheduler must protect.  This package provides all
three, plus the flow-size mixes published for production data centers:

* :class:`~repro.traffic.sources.PoissonSource` — memoryless background
  load at a configurable offered rate;
* :class:`~repro.traffic.sources.OnOffSource` — heavy-tailed bursts
  (Pareto ON periods at line rate) — the "long bursts";
* :class:`~repro.traffic.sources.CbrSource` — constant-bit-rate streams
  (VOIP-like, small periodic packets, high priority);
* :class:`~repro.traffic.flows.FlowSource` — flow-level workload with
  empirical size distributions (web-search / data-mining mixes);
* :mod:`~repro.traffic.patterns` — destination choosers (uniform,
  permutation, hotspot, round-robin shuffle, zipf) shared by all
  sources.
"""

from repro.traffic.flows import (
    DATAMINING_FLOW_SIZES,
    WEBSEARCH_FLOW_SIZES,
    EmpiricalSizeDistribution,
    FlowSource,
)
from repro.traffic.patterns import (
    DestinationChooser,
    FixedDestination,
    HotspotDestination,
    PermutationDestination,
    RoundRobinDestination,
    UniformDestination,
    ZipfDestination,
)
from repro.traffic.sources import CbrSource, OnOffSource, PoissonSource

__all__ = [
    "DestinationChooser",
    "UniformDestination",
    "FixedDestination",
    "PermutationDestination",
    "HotspotDestination",
    "RoundRobinDestination",
    "ZipfDestination",
    "PoissonSource",
    "OnOffSource",
    "CbrSource",
    "FlowSource",
    "EmpiricalSizeDistribution",
    "WEBSEARCH_FLOW_SIZES",
    "DATAMINING_FLOW_SIZES",
]
