"""Write-ahead journal that makes a sweep campaign survive daemon death.

The daemon's queue and lease table live in memory; a SIGKILL would
silently drop every spec a client had submitted but not yet received.
The journal closes that hole with the cheapest durable structure that
works: an append-only JSONL file under the cache directory, one record
per state transition::

    {"op": "queued",      "key": K, "spec": {<canonical spec>}}
    {"op": "leased",      "key": K, "executor": "local" | "<worker uid>"}
    {"op": "settled",     "key": K, "error": null | str}
    {"op": "quarantined", "key": K, "kind": "...", "error": "..."}
    {"op": "drained"}

Recovery is a linear replay: every ``queued`` key without a matching
``settled`` is still owed to somebody, so a restarting daemon
(``repro serve --resume``, the default) re-enqueues those specs before
accepting connections.  ``leased`` records are advisory — a lease held
at crash time is simply re-run, which is safe because specs are
content-addressed and entry points are pure: the re-execution produces
byte-identical payloads, and warm specs short-circuit through the
result cache anyway.  ``quarantined`` records poison specs (failed the
same way twice) so a restart cannot resurrect a retry storm;
``drained`` marks a clean shutdown, after which replay is a no-op —
the quarantine is campaign-scoped, so a drain wipes it too.

Two failure modes the format is built around:

* **Torn tail.**  A crash mid-append leaves a truncated final line.
  Replay stops at the first undecodable line instead of refusing the
  whole file — everything before the tear is trustworthy because each
  record is flushed (and fsynced for ``queued``) before the state
  transition it describes is acted on.
* **Unbounded growth.**  Long-lived daemons compact: the file is
  rewritten to contain only live (unsettled) entries whenever the
  dead-record count crosses a threshold, via tmp + ``os.replace`` so
  a crash mid-compaction loses nothing.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, Optional, TextIO, Tuple

#: Journal file name, placed inside the daemon's cache directory (the
#: cache globs ``*/*.json`` for its own entries, so a top-level
#: ``.jsonl`` file never collides with result payloads).
JOURNAL_NAME = "service-journal.jsonl"

#: Compact once this many dead (settled/superseded) records accumulate.
COMPACT_THRESHOLD = 4096


def journal_path(cache_dir) -> Path:
    return Path(cache_dir) / JOURNAL_NAME


def _iter_records(path: Path) -> Iterator[Dict[str, Any]]:
    """Decoded records up to the first torn/corrupt line."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            return  # torn tail — trust nothing at or past the tear
        if not isinstance(record, dict) or "op" not in record:
            return
        yield record


def replay(path: Path) -> Dict[str, dict]:
    """``{key: canonical spec}`` for every queued-but-unsettled record.

    This is the daemon's debt at the moment of the crash: specs a
    client submitted that never produced a settlement.  A ``drained``
    record wipes the slate (clean shutdown).
    """
    return replay_full(path)[0]


def apply_record(live: Dict[str, dict],
                 quarantined: Dict[str, Dict[str, str]],
                 record: Dict[str, Any]) -> None:
    """Fold one journal record into ``(live, quarantined)`` in place.

    The single replay semantic, shared by :func:`replay_full` (disk)
    and the standby hub's live mirror (wire): whichever path the
    records travel, the reconstructed state is identical.
    """
    op = record.get("op")
    if op == "queued":
        key, spec = record.get("key"), record.get("spec")
        if isinstance(key, str) and isinstance(spec, dict):
            live[key] = spec
    elif op == "settled":
        live.pop(record.get("key"), None)
    elif op == "quarantined":
        key = record.get("key")
        if isinstance(key, str):
            quarantined[key] = {
                "kind": str(record.get("kind") or "ERROR"),
                "error": str(record.get("error") or ""),
            }
            live.pop(key, None)
    elif op == "drained":
        live.clear()
        quarantined.clear()


def replay_full(
        path: Path) -> Tuple[Dict[str, dict], Dict[str, Dict[str, str]]]:
    """Replay both the debt and the quarantine roster.

    Returns ``(live, quarantined)`` where ``quarantined`` maps spec
    key to ``{"kind", "error"}``.  A quarantined key is removed from
    the live set — recovery must report it once, not re-run it; that
    is the whole point of the quarantine surviving restarts.
    """
    live: Dict[str, dict] = {}
    quarantined: Dict[str, Dict[str, str]] = {}
    for record in _iter_records(path):
        apply_record(live, quarantined, record)
    return live, quarantined


class ServiceJournal:
    """Append-side handle used by a running daemon.

    Not thread-safe by itself — the daemon serializes all appends on
    its event loop, which is the only writer.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file: Optional[TextIO] = open(
            self.path, "a", encoding="utf-8")
        self._live = 0
        self._dead = 0
        #: Quarantine roster recovered from disk (filled by
        #: :meth:`recover`); ``{key: {"kind", "error"}}``.
        self.quarantined: Dict[str, Dict[str, str]] = {}
        #: Called with each record *after* it is durably appended —
        #: the daemon hangs its standby-peer relay here.  Appends all
        #: happen on the daemon's event loop, so the callback may
        #: touch loop state directly.  Compaction does not fire it
        #: (the logical state is unchanged by a rewrite).
        self.on_append: Optional[Callable[[Dict[str, Any]], None]] = None

    # -- appends ------------------------------------------------------------

    def record_queued(self, key: str, spec_canonical: dict) -> None:
        # fsync: this is the one record whose loss breaks the durability
        # contract (a spec accepted from a client must survive us).
        self._append({"op": "queued", "key": key, "spec": spec_canonical},
                     fsync=True)
        self._live += 1

    def record_leased(self, key: str, executor: str) -> None:
        self._append({"op": "leased", "key": key, "executor": executor})
        self._dead += 1

    def record_settled(self, key: str, error: Optional[str]) -> None:
        self._append({"op": "settled", "key": key, "error": error})
        self._live = max(0, self._live - 1)
        self._dead += 2  # the settled record + the queued one it retires

    def record_quarantined(self, key: str, kind: str,
                           error: str) -> None:
        # fsync for the same reason as ``queued``: losing this record
        # would let a restart re-run a known poison spec.
        self._append({"op": "quarantined", "key": key, "kind": kind,
                      "error": error}, fsync=True)

    def record_drained(self) -> None:
        self._append({"op": "drained"}, fsync=True)

    def mirror(self, record: Dict[str, Any]) -> None:
        """Append one relayed record verbatim (the standby-hub path).

        The record already carries its op; bookkeeping mirrors what
        the corresponding ``record_*`` method would have done, and
        durability matches too (fsync for the ops whose loss would
        break the recovery contract).
        """
        op = record.get("op")
        if op not in ("queued", "leased", "settled", "quarantined",
                      "drained"):
            return
        self._append(record, fsync=op in ("queued", "quarantined",
                                          "drained"))
        if op == "queued":
            self._live += 1
        elif op == "leased":
            self._dead += 1
        elif op == "settled":
            self._live = max(0, self._live - 1)
            self._dead += 2
        elif op == "quarantined":
            key = record.get("key")
            if isinstance(key, str):
                self.quarantined[key] = {
                    "kind": str(record.get("kind") or "ERROR"),
                    "error": str(record.get("error") or ""),
                }

    def _append(self, record: Dict[str, Any], fsync: bool = False) -> None:
        if self._file is None:
            return
        try:
            self._file.write(json.dumps(
                record, sort_keys=True, separators=(",", ":")) + "\n")
            self._file.flush()
            if fsync:
                os.fsync(self._file.fileno())
        except (OSError, ValueError):
            # A dying disk must not take the daemon down with it; the
            # journal degrades to best-effort and recovery loses depth.
            return
        if self.on_append is not None:
            self.on_append(record)

    # -- maintenance --------------------------------------------------------

    @property
    def wants_compaction(self) -> bool:
        return self._dead >= COMPACT_THRESHOLD

    def compact(self, live: Dict[str, dict],
                quarantined: Optional[Dict[str, Dict[str, str]]] = None,
                ) -> None:
        """Rewrite the file to exactly the given live set, atomically.

        ``quarantined`` entries are preserved ahead of the live set —
        compaction must never launder a poison spec back to runnable.
        """
        if self._file is None:
            return
        if quarantined is None:
            quarantined = self.quarantined
        tmp = self.path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with open(tmp, "w", encoding="utf-8") as out:
                for key, record in quarantined.items():
                    out.write(json.dumps(
                        {"op": "quarantined", "key": key,
                         "kind": record.get("kind", "ERROR"),
                         "error": record.get("error", "")},
                        sort_keys=True, separators=(",", ":")) + "\n")
                for key, spec in live.items():
                    out.write(json.dumps(
                        {"op": "queued", "key": key, "spec": spec},
                        sort_keys=True, separators=(",", ":")) + "\n")
                out.flush()
                os.fsync(out.fileno())
            self._file.close()
            os.replace(tmp, self.path)
        except OSError:
            return
        finally:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
        self._file = open(self.path, "a", encoding="utf-8")
        self._live, self._dead = len(live), 0

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None

    # -- recovery -----------------------------------------------------------

    @classmethod
    def recover(cls, cache_dir) -> Tuple["ServiceJournal", Dict[str, dict]]:
        """Open the journal under ``cache_dir`` and return its debt.

        The file is compacted down to the recovered live set before
        appending resumes, so a crash loop cannot grow it without bound.
        """
        path = journal_path(cache_dir)
        live, quarantined = replay_full(path)
        journal = cls(path)
        journal.quarantined = quarantined
        journal.compact(live, quarantined)
        return journal, live


__all__ = ["ServiceJournal", "JOURNAL_NAME", "COMPACT_THRESHOLD",
           "journal_path", "replay", "replay_full", "apply_record"]
