"""Scheduler interface.

A scheduler consumes a **demand matrix** (bytes or cells wanted from
each input to each output — produced by the demand-estimation stage) and
produces a :class:`ScheduleResult`: one or more circuit matchings with
hold times, plus the residue that should travel over the EPS.

The interface is deliberately the same for crossbar cell schedulers
(iSLIP, PIM — one matching per cell slot, no residue) and hybrid
circuit schedulers (Solstice, hotspot — multi-slot schedules with EPS
residue), because the paper's framework hosts both kinds in the same
scheduling-logic slot.

Hardware-cost handshake
-----------------------

The timing models in :mod:`repro.hwmodel` need to know how much work a
``compute`` call did (iterations, matchings emitted).  Schedulers record
that in :attr:`Scheduler.last_stats`, a plain dict refreshed on every
call.  Keeping it out of the return type keeps algorithm code clean.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.schedulers.matching import Matching
from repro.sim.errors import SchedulingError


@dataclass
class ScheduleResult:
    """Output of one scheduling decision.

    Attributes
    ----------
    matchings:
        Ordered list of ``(matching, hold_ps)`` pairs.  Cell schedulers
        return exactly one pair with ``hold_ps == 0`` (meaning "one
        slot"); circuit schedulers return a full reconfiguration plan.
    eps_residue:
        n×n byte matrix the scheduler chose *not* to serve with
        circuits; the switching logic forwards it over the EPS.  ``None``
        means nothing was diverted.
    """

    matchings: List[Tuple[Matching, int]] = field(default_factory=list)
    eps_residue: Optional[np.ndarray] = None

    @property
    def first(self) -> Matching:
        """The first (or only) matching; errors if the plan is empty."""
        if not self.matchings:
            raise SchedulingError("schedule result contains no matchings")
        return self.matchings[0][0]

    @property
    def total_hold_ps(self) -> int:
        """Sum of hold times across the plan."""
        return sum(hold for __, hold in self.matchings)

    def served_matrix(self) -> np.ndarray:
        """Boolean n×n matrix of pairs served by at least one matching."""
        if not self.matchings:
            raise SchedulingError("schedule result contains no matchings")
        n = self.matchings[0][0].n
        served = np.zeros((n, n), dtype=bool)
        for matching, __ in self.matchings:
            served |= matching.to_matrix()
        return served


class Scheduler(abc.ABC):
    """Base class for every scheduling algorithm.

    Subclasses implement :meth:`compute` and set :attr:`name`.  They
    must be deterministic given ``(constructor args, rng, demand
    sequence)`` — randomised algorithms draw only from the ``rng``
    passed at construction.
    """

    #: Registry/display name; subclasses override.
    name = "abstract"

    def __init__(self, n_ports: int) -> None:
        if n_ports < 2:
            raise SchedulingError(
                f"schedulers need >= 2 ports, got {n_ports}")
        self.n_ports = n_ports
        #: Work accounting from the most recent ``compute`` call; the
        #: hardware timing model reads this.  Common keys:
        #: ``iterations`` (matching iterations executed) and
        #: ``matchings`` (number emitted).
        self.last_stats: Dict[str, int] = {}

    @abc.abstractmethod
    def compute(self, demand: np.ndarray) -> ScheduleResult:
        """Compute a schedule for the given n×n demand matrix.

        ``demand`` is non-negative with a zero diagonal.  Implementations
        must not mutate it.
        """

    def compute_trusted(self, demand: np.ndarray) -> ScheduleResult:
        """Hot-path entry that skips :meth:`_check_demand` re-validation.

        Contract — the **caller** guarantees, for every call:

        * ``demand`` has shape ``(n_ports, n_ports)``;
        * every entry is non-negative;
        * the diagonal is zero;
        * ``demand`` is a real-valued numpy array (any integer or float
          dtype — implementations must accept both and must not rely on
          the float64 coercion that :meth:`_check_demand` performs);
        * the array is not mutated by the scheduler (same rule as
          :meth:`compute`).

        Tight inner loops (the cell fabric runs one scheduling decision
        per slot) call this instead of :meth:`compute` so that shape /
        sign checks and the ``astype`` copy are not repeated thousands
        of times on matrices the caller itself maintains.  The results
        must be **identical** to :meth:`compute` on the same demand —
        this is a validation bypass, never a different algorithm.

        The base implementation simply falls back to :meth:`compute`,
        so every scheduler supports the entry point; hot schedulers
        override it (see iSLIP, greedy-MWM, Solstice).
        """
        return self.compute(demand)

    # -- shared validation ------------------------------------------------------

    def _check_demand(self, demand: np.ndarray) -> np.ndarray:
        """Validate shape/sign; returns a float64 view or copy.

        Diagonal entries are allowed: a crossbar algorithm has no notion
        of "self-traffic" (input i and output i are just ports).  The
        rack framework never generates diagonal demand, but the
        algorithms must not depend on that — the classic iSLIP
        desynchronisation proof, for instance, assumes all N² VOQs can
        be backlogged.
        """
        demand = np.asarray(demand)
        if demand.shape != (self.n_ports, self.n_ports):
            raise SchedulingError(
                f"{self.name}: demand shape {demand.shape} != "
                f"({self.n_ports}, {self.n_ports})")
        if (demand < 0).any():
            raise SchedulingError(f"{self.name}: demand has negative entries")
        return demand.astype(np.float64, copy=False)


__all__ = ["Scheduler", "ScheduleResult"]
