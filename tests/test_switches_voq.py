"""Tests for the VOQ bank."""

import pytest

from repro.net.packet import Packet
from repro.sim.errors import ConfigurationError
from repro.switches.voq import VoqBank


def _packet(src=0, dst=1, size=100):
    return Packet(src=src, dst=dst, size=size, created_ps=0)


class TestStructure:
    def test_minimum_ports(self, sim):
        with pytest.raises(ConfigurationError):
            VoqBank(sim, 1)

    def test_diagonal_has_no_queue(self, sim):
        bank = VoqBank(sim, 3)
        with pytest.raises(ConfigurationError):
            bank.queue(2, 2)

    def test_off_diagonal_queues_exist(self, sim):
        bank = VoqBank(sim, 3)
        for src in range(3):
            for dst in range(3):
                if src != dst:
                    assert bank.queue(src, dst) is not None


class TestOperations:
    def test_enqueue_routes_by_packet_addresses(self, sim):
        bank = VoqBank(sim, 4)
        bank.enqueue(_packet(src=2, dst=3))
        assert not bank.is_empty(2, 3)
        assert bank.is_empty(0, 1)

    def test_dequeue_returns_fifo(self, sim):
        bank = VoqBank(sim, 3)
        a, b = _packet(), _packet()
        bank.enqueue(a)
        bank.enqueue(b)
        assert bank.dequeue(0, 1) is a
        assert bank.head(0, 1) is b

    def test_demand_bytes_matrix(self, sim):
        bank = VoqBank(sim, 3)
        bank.enqueue(_packet(src=0, dst=1, size=100))
        bank.enqueue(_packet(src=0, dst=1, size=50))
        bank.enqueue(_packet(src=2, dst=0, size=70))
        demand = bank.demand_bytes()
        assert demand[0, 1] == 150
        assert demand[2, 0] == 70
        assert demand.sum() == 220

    def test_demand_matrices_are_copies(self, sim):
        bank = VoqBank(sim, 3)
        bank.enqueue(_packet())
        demand = bank.demand_bytes()
        demand[0, 1] = 999
        assert bank.demand_bytes()[0, 1] == 100

    def test_demand_packets(self, sim):
        bank = VoqBank(sim, 3)
        bank.enqueue(_packet())
        bank.enqueue(_packet())
        assert bank.demand_packets()[0, 1] == 2

    def test_totals(self, sim):
        bank = VoqBank(sim, 3)
        bank.enqueue(_packet(size=10))
        bank.enqueue(_packet(src=1, dst=2, size=30))
        assert bank.total_bytes == 40
        assert bank.total_packets == 2

    def test_nonempty_voqs(self, sim):
        bank = VoqBank(sim, 3)
        bank.enqueue(_packet(src=0, dst=2))
        bank.enqueue(_packet(src=1, dst=0))
        assert sorted(bank.nonempty_voqs()) == [(0, 2), (1, 0)]


class TestPeakTracking:
    def test_peak_total_bytes_is_simultaneous(self, sim):
        bank = VoqBank(sim, 3)
        bank.enqueue(_packet(size=100))
        bank.enqueue(_packet(src=1, dst=2, size=100))   # peak = 200
        bank.dequeue(0, 1)
        bank.enqueue(_packet(src=2, dst=0, size=50))    # now 150
        assert bank.peak_total_bytes() == 200

    def test_peak_independent_across_instances(self, sim):
        first = VoqBank(sim, 3)
        first.enqueue(_packet(size=500))
        second = VoqBank(sim, 3)
        assert second.peak_total_bytes() == 0


class TestStatusHook:
    def test_hook_fires_on_enqueue_and_dequeue(self, sim):
        events = []
        bank = VoqBank(sim, 3,
                       on_status_change=lambda s, d, b:
                       events.append((s, d, b)))
        bank.enqueue(_packet(size=100))
        bank.dequeue(0, 1)
        assert events == [(0, 1, 100), (0, 1, 0)]

    def test_capacity_drop_counted(self, sim):
        bank = VoqBank(sim, 3, capacity_bytes=100)
        assert bank.enqueue(_packet(size=100))
        assert not bank.enqueue(_packet(size=100))
        assert bank.drops_total() == 1
