"""Tests for hub failover and fleet supervision.

Three layers, mirroring the subsystems:

* the ``peer``/``journal-sync`` conversation against a live daemon
  (socket level — digests, snapshots, refusals);
* :class:`StandbyHub` against both a real primary (mirror fidelity,
  clean stand-down) and a scripted fake primary (loss → promotion,
  which a thread-hosted real daemon cannot simulate because it cannot
  be SIGKILLed);
* :class:`Supervisor` with injected spawn/clock/probe so restart
  backoff, quarantine, hung-hub detection and autoscaling are stepped
  tick by tick — no test here ever sleeps on the control loop.
"""

import collections
import json
import os
import socket
import threading

import pytest

from repro import experiments
from repro.experiments.base import ExperimentReport
from repro.runner import RunSpec
from repro.service import (
    PROTOCOL_VERSION,
    ReproDaemon,
    RetryPolicy,
    ServiceClient,
    StandbyError,
    StandbyHub,
    Supervisor,
    SupervisorError,
    execute_via_server,
    journal_path,
    parse_address_list,
)
from repro.service.journal import replay, replay_full
from repro.service.protocol import (
    connect,
    peer_frame,
    read_frame,
    register_frame,
    sync_digest,
    write_frame,
)
from repro.service.worker import ReproWorker


@pytest.fixture
def start_daemon(tmp_path):
    """Factory: a live daemon thread on an ephemeral TCP port."""
    running = []

    def start(**kwargs):
        kwargs.setdefault("jobs", 1)
        kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
        kwargs.setdefault("quiet", True)
        daemon = ReproDaemon("127.0.0.1:0", **kwargs)
        thread = threading.Thread(target=daemon.run, daemon=True)
        thread.start()
        assert daemon.wait_ready(10), "daemon never bound"
        running.append((daemon, thread))
        return daemon

    yield start
    for daemon, thread in running:
        daemon.request_shutdown()
        thread.join(timeout=15)
        assert not thread.is_alive(), "daemon failed to drain"


@pytest.fixture
def fake_experiment(monkeypatch):
    """A gated in-process entry point registered as ``esvc``."""

    class Fake:
        def __init__(self):
            self.calls = collections.Counter()
            self.lock = threading.Lock()
            self.gate = threading.Event()
            self.gate.set()
            self.entered = threading.Event()

        def __call__(self, config):
            with self.lock:
                self.calls[config.seed] += 1
            self.entered.set()
            assert self.gate.wait(timeout=30), "test forgot the gate"
            return ExperimentReport(
                experiment_id="esvc", title="service test",
                data={"seed": config.seed},
                expectations=[f"seed {config.seed} ok"])

        def spec(self, seed=0):
            return RunSpec("esvc", seed=seed)

    fake = Fake()
    monkeypatch.setitem(experiments.ENTRY_POINTS, "esvc", fake)
    return fake


#: A retry policy fast enough for tests but still >= 1 attempt.
FAST_RETRY = RetryPolicy(max_attempts=2, base_delay_s=0.01,
                         max_delay_s=0.05, jitter=0.0)


class TestAddressList:
    def test_splits_and_strips(self):
        assert parse_address_list("127.0.0.1:1, 127.0.0.1:2") == \
            ["127.0.0.1:1", "127.0.0.1:2"]

    def test_single_address_passes_through(self):
        assert parse_address_list("x.sock") == ["x.sock"]

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            parse_address_list(" , ,")

    def test_each_entry_validated(self):
        with pytest.raises(ValueError):
            parse_address_list("127.0.0.1:1,host:notaport")


class TestPeerConversation:
    def test_welcome_snapshot_digest_and_live_relay(
            self, start_daemon, fake_experiment):
        daemon = start_daemon()
        fake_experiment.gate.clear()  # hold the job in flight
        spec = fake_experiment.spec(seed=1)
        client_done = threading.Event()

        def submit():
            execute_via_server(daemon.bound_address, [spec])
            client_done.set()

        threading.Thread(target=submit, daemon=True).start()
        assert fake_experiment.entered.wait(10)
        sock = connect(daemon.bound_address, timeout=10)
        try:
            write_frame(sock, peer_frame("test-standby"))
            welcome = read_frame(sock)
            assert welcome["type"] == "peer-welcome"
            snapshot = welcome["snapshot"]
            assert sync_digest(snapshot) == welcome["digest"]
            assert spec.key() in snapshot["live"]
            assert welcome["lease_timeout_s"] == \
                pytest.approx(daemon.lease_timeout_s)
            # Release the job; its settle must arrive as a relayed
            # journal-sync with a verifiable digest.
            fake_experiment.gate.set()
            saw_settled = False
            sock.settimeout(10)
            while not saw_settled:
                frame = read_frame(sock)
                assert frame is not None
                if frame["type"] != "journal-sync":
                    continue
                assert sync_digest(frame["records"]) == frame["digest"]
                for record in frame["records"]:
                    if record["op"] == "settled" \
                            and record["key"] == spec.key():
                        saw_settled = True
            assert daemon.stats.peers_connected == 1
            assert daemon.stats.sync_records_relayed >= 1
        finally:
            sock.close()
        assert client_done.wait(10)

    def test_peer_needs_journal(self, start_daemon):
        daemon = start_daemon(cache_dir=None)
        sock = connect(daemon.bound_address, timeout=10)
        try:
            write_frame(sock, peer_frame("test-standby"))
            reply = read_frame(sock)
            assert reply["type"] == "error"
            assert reply["code"] == "no-journal"
        finally:
            sock.close()

    def test_peer_version_mismatch(self, start_daemon):
        daemon = start_daemon()
        sock = connect(daemon.bound_address, timeout=10)
        try:
            write_frame(sock, {"type": "peer", "version": 999,
                               "name": "future"})
            reply = read_frame(sock)
            assert reply["type"] == "error"
            assert reply["code"] == "version-mismatch"
        finally:
            sock.close()

    def test_stats_count_peers(self, start_daemon):
        daemon = start_daemon()
        sock = connect(daemon.bound_address, timeout=10)
        try:
            write_frame(sock, peer_frame("counted"))
            assert read_frame(sock)["type"] == "peer-welcome"
            with ServiceClient(daemon.bound_address) as client:
                assert client.stats()["peers"] == 1
        finally:
            sock.close()


class _FakePrimary:
    """A scripted 'daemon' speaking just the peer conversation.

    Lets tests exercise standby behaviour a thread-hosted real daemon
    cannot produce: abrupt death (no bye) followed by refused
    re-dials, which is the promotion trigger.
    """

    def __init__(self, sessions):
        #: list of session scripts; each is a list of frames to send
        #: after the peer-welcome, or the string "bye"/"drop" marker.
        self.sessions = sessions
        self.listener = socket.socket(socket.AF_INET,
                                      socket.SOCK_STREAM)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(8)
        host, port = self.listener.getsockname()[:2]
        self.address = f"{host}:{port}"
        self.thread = threading.Thread(target=self._serve, daemon=True)

    def start(self):
        self.thread.start()
        return self

    def _serve(self):
        for script in self.sessions:
            try:
                conn, _ = self.listener.accept()
            except OSError:
                return
            try:
                hello = read_frame(conn)
                assert hello["type"] == "peer"
                snapshot = script["snapshot"]
                write_frame(conn, {
                    "type": "peer-welcome",
                    "snapshot": snapshot,
                    "digest": script.get("digest",
                                         sync_digest(snapshot)),
                    "lease_timeout_s": 2.0,
                })
                for frame in script.get("frames", ()):
                    write_frame(conn, frame)
                if script.get("bye"):
                    write_frame(conn, {"type": "bye"})
            except OSError:
                pass
            finally:
                try:
                    conn.close()
                except OSError:
                    pass
        # Script exhausted: the "primary" is dead for good.
        try:
            self.listener.close()
        except OSError:
            pass

    def close(self):
        try:
            self.listener.close()
        except OSError:
            pass


def _sync_frame(records):
    return {"type": "journal-sync", "seq": 1, "records": records,
            "digest": sync_digest(records)}


class TestStandbyHub:
    def test_requires_cache_dir(self):
        with pytest.raises(ValueError):
            StandbyHub("127.0.0.1:0", "127.0.0.1:1", cache_dir="")

    def test_never_synced_refuses_promotion(self, tmp_path):
        # Nothing ever listens here: dial fails, policy exhausts, and
        # promoting from an empty mirror must be refused (a typo'd
        # --follow would otherwise become a fresh empty hub).
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        dead = "{}:{}".format(*probe.getsockname()[:2])
        probe.close()
        hub = StandbyHub("127.0.0.1:0", dead,
                         cache_dir=str(tmp_path / "standby"),
                         retry=FAST_RETRY, quiet=True)
        with pytest.raises(StandbyError):
            hub.run()
        assert hub.promoted_daemon is None

    def test_clean_bye_stands_down(self, tmp_path):
        spec = RunSpec("esvc", seed=5)
        primary = _FakePrimary([{
            "snapshot": {"live": {}, "quarantined": {}},
            "frames": [_sync_frame([
                {"op": "queued", "key": spec.key(),
                 "spec": spec.canonical()}])],
            "bye": True,
        }]).start()
        cache_dir = tmp_path / "standby"
        hub = StandbyHub("127.0.0.1:0", primary.address,
                         cache_dir=str(cache_dir),
                         retry=FAST_RETRY, quiet=True)
        assert hub.run() == 0
        assert hub.promoted_daemon is None
        assert hub.records_mirrored == 1
        # The mirrored drain wipes the debt: a later --resume of the
        # standby's cache dir must find nothing owed.
        assert replay(journal_path(cache_dir)) == {}
        primary.close()

    def test_digest_mismatch_is_rejected(self, tmp_path):
        primary = _FakePrimary([{
            "snapshot": {"live": {}, "quarantined": {}},
            "digest": "0" * 64,  # wrong on purpose
        }]).start()
        hub = StandbyHub("127.0.0.1:0", primary.address,
                         cache_dir=str(tmp_path / "standby"),
                         retry=FAST_RETRY, quiet=True)
        # Never synced (the one session was rejected) + exhausted
        # re-dials = refusal, not promotion from corrupt state.
        with pytest.raises(StandbyError):
            hub.run()
        primary.close()

    def test_promotes_and_reruns_mirrored_debt(
            self, tmp_path, fake_experiment):
        spec = fake_experiment.spec(seed=9)
        quarantined_key = "poisoned-key"
        primary = _FakePrimary([{
            "snapshot": {"live": {}, "quarantined": {}},
            "frames": [
                _sync_frame([{"op": "queued", "key": spec.key(),
                              "spec": spec.canonical()}]),
                _sync_frame([{"op": "quarantined",
                              "key": quarantined_key,
                              "kind": "TIMEOUT", "error": "boom"}]),
            ],
            # no bye: the connection just dies, then re-dials fail
        }]).start()
        cache_dir = tmp_path / "standby"
        hub = StandbyHub("127.0.0.1:0", primary.address,
                         cache_dir=str(cache_dir),
                         retry=FAST_RETRY, quiet=True)
        result = {}

        def run():
            result["exit"] = hub.run()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert hub.wait_synced(10)
        # Promotion: the mirrored queued record replays as recovered
        # debt and executes on the promoted hub's own pool.
        deadline = threading.Event()
        for _ in range(400):
            if hub.promoted_daemon is not None:
                break
            deadline.wait(0.025)
        assert hub.promoted_daemon is not None, "never promoted"
        daemon = hub.promoted_daemon
        assert daemon.wait_ready(10)
        assert fake_experiment.entered.wait(10)
        with ServiceClient(daemon.bound_address) as client:
            assert client.stats()["promotions"] == 1
        # The poison record survived the failover too.
        assert daemon.ready_banner()["quarantined_keys"] == 1
        # The recovered spec ran exactly once on the promoted hub.
        outcomes = execute_via_server(daemon.bound_address, [spec])
        assert outcomes[0].error is None
        assert fake_experiment.calls[9] == 1
        hub.stop()
        thread.join(timeout=15)
        assert not thread.is_alive()
        assert result["exit"] == 0
        primary.close()

    def test_tails_a_real_primary_and_stands_down_on_drain(
            self, tmp_path, start_daemon, fake_experiment):
        daemon = start_daemon(
            cache_dir=str(tmp_path / "primary-cache"))
        cache_dir = tmp_path / "standby-cache"
        hub = StandbyHub("127.0.0.1:0", daemon.bound_address,
                         cache_dir=str(cache_dir),
                         retry=FAST_RETRY, quiet=True)
        result = {}

        def run():
            result["exit"] = hub.run()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert hub.wait_synced(10)
        spec = fake_experiment.spec(seed=3)
        outcomes = execute_via_server(daemon.bound_address, [spec])
        assert outcomes[0].error is None
        # queued + leased + settled all cross the wire.
        for _ in range(400):
            if hub.records_mirrored >= 3:
                break
            threading.Event().wait(0.025)
        assert hub.records_mirrored >= 3
        live, _quarantined = replay_full(journal_path(cache_dir))
        assert live == {}  # settled debt mirrors as settled
        daemon.request_shutdown()
        thread.join(timeout=15)
        assert not thread.is_alive(), "standby missed the drain"
        assert result["exit"] == 0


class TestMultiAddressFailover:
    @staticmethod
    def _dead_address():
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        address = "{}:{}".format(*probe.getsockname()[:2])
        probe.close()
        return address

    def test_client_rotates_to_the_live_hub(
            self, start_daemon, fake_experiment):
        daemon = start_daemon()
        dead = self._dead_address()
        outcomes = execute_via_server(
            f"{dead},{daemon.bound_address}",
            [fake_experiment.spec(seed=1)],
            retry=RetryPolicy(max_attempts=4, base_delay_s=0.01,
                              max_delay_s=0.05, jitter=0.0))
        assert outcomes[0].error is None

    def test_worker_first_dial_falls_through_to_live_hub(
            self, start_daemon, fake_experiment):
        daemon = start_daemon(local_execution=False)
        dead = self._dead_address()
        worker = ReproWorker(f"{dead},{daemon.bound_address}",
                             jobs=1, retry=FAST_RETRY, quiet=True)
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        try:
            assert worker.wait_registered(10)
            assert worker.address == daemon.bound_address
            outcomes = execute_via_server(
                daemon.bound_address, [fake_experiment.spec(seed=2)])
            assert outcomes[0].error is None
        finally:
            worker.stop()
            thread.join(timeout=10)

    def test_bad_list_raises_before_any_dial(self):
        with pytest.raises(ValueError):
            execute_via_server("host:notaport,127.0.0.1:1",
                               [RunSpec("esvc", seed=1)])

    def test_supervisor_probe_falls_through_to_live_hub(
            self, start_daemon):
        from repro.service.supervisor import _default_probe

        daemon = start_daemon()
        dead = self._dead_address()
        stats = _default_probe(f"{dead},{daemon.bound_address}", 5.0)
        assert stats["queued"] == 0

    def test_supervisor_probe_raises_when_every_hub_is_dead(self):
        from repro.service.supervisor import _default_probe

        with pytest.raises(Exception):
            _default_probe(self._dead_address(), 0.5)


class TestHeartbeatOverride:
    def _register(self, daemon, **kwargs):
        sock = connect(daemon.bound_address, timeout=10)
        try:
            write_frame(sock, register_frame(
                jobs=1, replica_batch=False, name="hb-test", **kwargs))
            return read_frame(sock)
        finally:
            sock.close()

    def test_override_is_echoed(self, start_daemon):
        daemon = start_daemon(lease_timeout_s=30.0)
        reply = self._register(daemon, heartbeat_s=2.5)
        assert reply["type"] == "registered"
        assert reply["heartbeat_interval_s"] == pytest.approx(2.5)

    def test_default_is_a_third_of_the_lease(self, start_daemon):
        daemon = start_daemon(lease_timeout_s=30.0)
        reply = self._register(daemon)
        assert reply["type"] == "registered"
        assert reply["heartbeat_interval_s"] == pytest.approx(10.0)

    def test_too_slow_for_the_lease_is_refused(self, start_daemon):
        daemon = start_daemon(lease_timeout_s=10.0)
        reply = self._register(daemon, heartbeat_s=6.0)
        assert reply["type"] == "error"
        assert reply["code"] == "bad-heartbeat"
        assert "6.0" in reply["message"]
        assert "10.0" in reply["message"]

    def test_garbage_override_is_refused(self, start_daemon):
        daemon = start_daemon()
        reply = self._register(daemon, heartbeat_s=-1)
        assert reply["type"] == "error"
        assert reply["code"] == "bad-register"

    def test_worker_constructor_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ReproWorker("127.0.0.1:1", heartbeat_s=0)


class _FakeProc:
    """A Popen stand-in whose death is test-controlled."""

    _pids = iter(range(1000, 100000))

    def __init__(self, argv):
        self.argv = argv
        self.pid = next(self._pids)
        self.returncode = None
        self.signals = []

    def poll(self):
        return self.returncode

    def wait(self, timeout=None):
        return self.returncode

    def kill(self):
        self.signals.append("KILL")
        self.returncode = -9

    def send_signal(self, signum):
        self.signals.append(signum)
        # SIGTERM is a drain request; the fake dies cleanly at once.
        self.returncode = 0


class _Harness:
    """Supervisor with fake spawn/clock/probe, stepped tick by tick."""

    def __init__(self, **kwargs):
        self.now = 1000.0
        self.spawned = []
        self.probe_result = {"queued": 0}
        self.probe_error = None

        def spawn(argv):
            proc = _FakeProc(argv)
            self.spawned.append(proc)
            return proc

        def probe(address, timeout):
            if self.probe_error is not None:
                raise self.probe_error
            return dict(self.probe_result)

        kwargs.setdefault("hub_argv", None)
        kwargs.setdefault("worker_argv",
                          lambda i: ["worker", str(i)])
        kwargs.setdefault("probe_address", "127.0.0.1:1")
        kwargs.setdefault("retry", RetryPolicy(
            max_attempts=8, base_delay_s=1.0, max_delay_s=60.0,
            jitter=0.0))
        kwargs.setdefault("healthy_after_s", 5.0)
        self.sup = Supervisor(spawn=spawn, probe=probe,
                              clock=lambda: self.now,
                              sleep=lambda s: False,
                              quiet=True, **kwargs)

    def advance(self, seconds):
        self.now += seconds


class TestSupervisor:
    def test_rejects_bad_watermarks(self):
        with pytest.raises(SupervisorError):
            _Harness(min_workers=-1)
        with pytest.raises(SupervisorError):
            _Harness(min_workers=4, max_workers=2)
        with pytest.raises(SupervisorError):
            _Harness(scale_up_depth=0)

    def test_respawns_crashed_worker_with_backoff(self):
        h = _Harness(min_workers=1, max_workers=2)
        h.sup.start_fleet()
        assert len(h.spawned) == 1
        worker = h.sup.workers[0]
        h.advance(30.0)  # it served honestly for a while
        h.spawned[0].returncode = 1  # then crashed
        h.sup.tick()
        assert worker.restarts == 1
        assert worker.restart_at is not None
        assert worker.restart_at > h.now  # backoff, not instant
        h.sup.tick()  # before the backoff elapses: nothing respawns
        assert len(h.spawned) == 1
        h.advance(worker.restart_at - h.now + 0.1)
        h.sup.tick()
        assert len(h.spawned) == 2  # respawned
        assert worker.live

    def test_backoff_grows_per_consecutive_failure(self):
        h = _Harness(min_workers=1, max_workers=2)
        h.sup.start_fleet()
        worker = h.sup.workers[0]
        delays = []
        for _ in range(3):
            h.spawned[-1].returncode = 1
            h.sup.tick()
            delays.append(worker.restart_at - h.now)
            h.advance(delays[-1] + 0.1)
            h.sup.tick()
        assert delays == sorted(delays)
        assert delays[2] > delays[0]

    def test_quarantine_after_restart_budget(self):
        h = _Harness(min_workers=1, max_workers=2, restart_budget=2)
        h.sup.start_fleet()
        worker = h.sup.workers[0]
        for _ in range(3):
            h.spawned[-1].returncode = 1  # dies young every time
            h.sup.tick()
            if worker.quarantined:
                break
            h.advance(worker.restart_at - h.now + 0.1)
            h.sup.tick()
        assert worker.quarantined
        assert "consecutive" in worker.quarantine_reason
        spawned_before = len(h.spawned)
        h.advance(1000.0)
        h.sup.tick()
        # Benched means benched: no respawn, and no fresh component
        # laundering the budget either.
        assert len(h.spawned) == spawned_before
        assert h.sup.all_quarantined

    def test_healthy_stretch_resets_the_budget(self):
        h = _Harness(min_workers=1, max_workers=2, restart_budget=2)
        h.sup.start_fleet()
        worker = h.sup.workers[0]
        for _ in range(5):  # more deaths than the budget...
            h.advance(30.0)  # ...but each after a healthy stretch
            h.spawned[-1].returncode = 1
            h.sup.tick()
            assert not worker.quarantined
            h.advance(worker.restart_at - h.now + 0.1)
            h.sup.tick()
        assert worker.live

    def test_scale_up_on_queue_depth(self):
        h = _Harness(min_workers=1, max_workers=3, scale_up_depth=8)
        h.sup.start_fleet()
        h.probe_result = {"queued": 20}
        h.sup.tick()
        assert len(h.sup.workers) == 2
        h.sup.tick()
        assert len(h.sup.workers) == 3
        h.sup.tick()  # at max: no further growth
        assert len(h.sup.workers) == 3

    def test_scale_down_retires_newest_after_idle_ticks(self):
        h = _Harness(min_workers=1, max_workers=3, scale_up_depth=8,
                     scale_idle_ticks=2)
        h.sup.start_fleet()
        h.probe_result = {"queued": 20}
        h.sup.tick()
        assert len(h.sup.workers) == 2
        newest = h.sup.workers[-1].process
        h.probe_result = {"queued": 0}
        h.sup.tick()
        h.sup.tick()  # second idle tick: retire
        assert 15 in newest.signals or "SIGTERM" in str(newest.signals)
        h.sup.tick()  # the retired exit is reaped, slot freed
        assert len(h.sup.workers) == 1
        assert h.sup.workers_retired == 1

    def test_hung_hub_is_killed_then_restarted(self):
        h = _Harness(hub_argv=["hub"], min_workers=0, max_workers=1,
                     probe_failures_before_kill=3)
        h.sup.start_fleet()
        hub_proc = h.spawned[0]
        h.advance(30.0)  # well past the boot grace
        h.probe_error = OSError("probe timed out")
        h.sup.tick()
        h.sup.tick()
        assert "KILL" not in hub_proc.signals  # not yet
        h.sup.tick()  # third consecutive failure: presumed hung
        assert "KILL" in hub_proc.signals
        h.sup.tick()  # the kill surfaced as an exit -> restart path
        hub = h.sup.hub
        assert hub.restarts == 1

    def test_boot_grace_protects_a_starting_hub(self):
        h = _Harness(hub_argv=["hub"], min_workers=0, max_workers=1,
                     probe_failures_before_kill=1,
                     healthy_after_s=5.0)
        h.sup.start_fleet()
        h.probe_error = OSError("not listening yet")
        h.sup.tick()  # within the grace window: no kill
        assert "KILL" not in h.spawned[0].signals

    def test_status_json_is_written_atomically(self, tmp_path):
        status_path = tmp_path / "fleet.json"
        h = _Harness(min_workers=1, max_workers=2,
                     status_path=str(status_path))
        h.sup.start_fleet()
        h.sup.tick()
        payload = json.loads(status_path.read_text())
        assert payload["ticks"] == 1
        assert payload["workers"][0]["live"] is True
        assert payload["workers"][0]["pid"] == h.spawned[0].pid

    def test_shutdown_terminates_fleet(self):
        h = _Harness(hub_argv=["hub"], min_workers=2, max_workers=4)
        h.sup.start_fleet()
        h.sup.shutdown_fleet()
        assert all(proc.returncode is not None for proc in h.spawned)


class TestServeBanner:
    def test_ready_banner_is_one_parseable_stdout_line(
            self, start_daemon, capfd):
        daemon = start_daemon()
        out = capfd.readouterr().out
        lines = [line for line in out.splitlines()
                 if '"serve-ready"' in line]
        assert lines, f"no serve-ready banner in stdout: {out!r}"
        payload = json.loads(lines[-1])
        assert payload["address"] == daemon.bound_address
        assert payload["pid"] == os.getpid()
        assert payload["jobs"] == 1
        assert payload["resume"] is True
        assert payload["promotions"] == 0

    def test_banner_reports_recovery_state(self, start_daemon,
                                           tmp_path, fake_experiment):
        cache_dir = tmp_path / "banner-cache"
        first = start_daemon(cache_dir=str(cache_dir))
        fake_experiment.gate.clear()
        spec = fake_experiment.spec(seed=4)
        threading.Thread(
            target=lambda: execute_via_server(
                first.bound_address, [spec]),
            daemon=True).start()
        assert fake_experiment.entered.wait(10)
        # The journal now owes one spec; a resuming daemon's banner
        # must say so (that is what a supervisor's readiness loop
        # reads instead of scraping logs).
        fake_experiment.gate.set()
        banner = first.ready_banner()
        assert banner["cache"] == str(cache_dir)
        assert banner["lease_timeout_s"] == first.lease_timeout_s


class TestVersionPin:
    def test_peer_frame_carries_protocol_version(self):
        frame = peer_frame("x")
        assert frame["version"] == PROTOCOL_VERSION
