"""Parameter-sweep helper.

Most experiments are "run the framework once per point on an axis".
:func:`sweep` keeps that loop in one place so every bench gets the same
error behaviour (a failing point raises with the parameter attached,
rather than silently vanishing from the series).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Tuple, TypeVar

P = TypeVar("P")
R = TypeVar("R")


def sweep(points: Iterable[P],
          run: Callable[[P], R]) -> List[Tuple[P, R]]:
    """Evaluate ``run`` at each point, returning (point, result) pairs."""
    results: List[Tuple[P, R]] = []
    for point in points:
        try:
            results.append((point, run(point)))
        except Exception as exc:
            raise RuntimeError(f"sweep failed at point {point!r}") from exc
    return results


__all__ = ["sweep"]
