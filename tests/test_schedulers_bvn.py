"""Tests for matrix stuffing and Birkhoff–von Neumann decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedulers.bvn import (
    BvnScheduler,
    birkhoff_von_neumann,
    stuff_matrix,
)
from repro.sim.errors import SchedulingError
from repro.sim.time import GIGABIT


@st.composite
def demand_matrices(draw, max_n=6):
    n = draw(st.integers(min_value=2, max_value=max_n))
    values = draw(st.lists(st.integers(0, 1000),
                           min_size=n * n, max_size=n * n))
    demand = np.array(values, dtype=float).reshape(n, n)
    np.fill_diagonal(demand, 0.0)
    return demand


class TestStuffMatrix:
    def test_equalises_row_and_column_sums(self):
        demand = np.array([
            [0.0, 5.0, 0.0],
            [1.0, 0.0, 1.0],
            [0.0, 0.0, 0.0],
        ])
        stuffed = stuff_matrix(demand)
        target = stuffed.sum(axis=1)[0]
        assert np.allclose(stuffed.sum(axis=1), target)
        assert np.allclose(stuffed.sum(axis=0), target)

    def test_never_decreases_entries(self):
        demand = np.array([[0.0, 3.0], [2.0, 0.0]])
        stuffed = stuff_matrix(demand)
        assert (stuffed >= demand - 1e-12).all()

    def test_zero_matrix_unchanged(self):
        assert stuff_matrix(np.zeros((3, 3))).sum() == 0

    @given(demand_matrices())
    @settings(max_examples=40, deadline=None)
    def test_property_balanced_and_dominating(self, demand):
        stuffed = stuff_matrix(demand)
        assert (stuffed >= demand - 1e-9).all()
        rows = stuffed.sum(axis=1)
        cols = stuffed.sum(axis=0)
        assert np.allclose(rows, rows[0], atol=1e-6)
        assert np.allclose(cols, rows[0], atol=1e-6)


class TestBvnDecomposition:
    def test_permutation_matrix_decomposes_to_itself(self):
        matrix = np.array([
            [0.0, 7.0, 0.0],
            [0.0, 0.0, 7.0],
            [7.0, 0.0, 0.0],
        ])
        terms = birkhoff_von_neumann(matrix)
        assert len(terms) == 1
        matching, weight = terms[0]
        assert weight == pytest.approx(7.0)
        assert matching.output_for(0) == 1

    def test_weights_reconstruct_matrix(self):
        demand = np.array([
            [0.0, 4.0, 2.0],
            [3.0, 0.0, 3.0],
            [3.0, 2.0, 1.0],
        ])
        stuffed = stuff_matrix(demand)
        terms = birkhoff_von_neumann(stuffed)
        rebuilt = np.zeros_like(stuffed)
        for matching, weight in terms:
            for i, j in matching.pairs():
                rebuilt[i, j] += weight
        assert np.allclose(rebuilt, stuffed, atol=1e-6)

    def test_unbalanced_matrix_rejected(self):
        with pytest.raises(SchedulingError, match="stuff"):
            birkhoff_von_neumann(np.array([[0.0, 5.0], [1.0, 0.0]]))

    def test_negative_matrix_rejected(self):
        with pytest.raises(SchedulingError):
            birkhoff_von_neumann(np.array([[0.0, -1.0], [-1.0, 0.0]]))

    def test_max_terms_cap(self):
        rng = np.random.default_rng(1)
        demand = rng.random((5, 5)) * 100
        np.fill_diagonal(demand, 0.0)
        terms = birkhoff_von_neumann(stuff_matrix(demand), max_terms=3)
        assert len(terms) <= 3

    @given(demand_matrices(max_n=5))
    @settings(max_examples=25, deadline=None)
    def test_property_terms_within_birkhoff_bound(self, demand):
        n = demand.shape[0]
        terms = birkhoff_von_neumann(stuff_matrix(demand))
        assert len(terms) <= n * n - 2 * n + 2

    @given(demand_matrices(max_n=5))
    @settings(max_examples=25, deadline=None)
    def test_property_total_weight_equals_row_sum(self, demand):
        stuffed = stuff_matrix(demand)
        if stuffed.sum() == 0:
            return
        terms = birkhoff_von_neumann(stuffed)
        total = sum(weight for __, weight in terms)
        assert total == pytest.approx(stuffed.sum(axis=1)[0], rel=1e-6)


class TestBvnScheduler:
    def test_plan_covers_demand(self):
        demand = np.array([
            [0.0, 4000.0, 0.0],
            [0.0, 0.0, 4000.0],
            [4000.0, 0.0, 0.0],
        ])
        scheduler = BvnScheduler(3, link_rate_bps=10 * GIGABIT)
        result = scheduler.compute(demand)
        served = result.served_matrix()
        assert served[0, 1] and served[1, 2] and served[2, 0]

    def test_hold_times_proportional_to_bytes(self):
        demand = np.zeros((3, 3))
        demand[0, 1] = 12500.0  # 10 us at 10G
        scheduler = BvnScheduler(3, link_rate_bps=10 * GIGABIT)
        result = scheduler.compute(demand)
        assert result.total_hold_ps == pytest.approx(10_000_000, rel=0.01)

    def test_min_hold_filters_slivers(self):
        demand = np.zeros((3, 3))
        demand[0, 1] = 10_000.0
        demand[1, 2] = 10.0  # an 8ns sliver at 10G
        scheduler = BvnScheduler(3, link_rate_bps=10 * GIGABIT,
                                 min_hold_ps=1_000_000)
        result = scheduler.compute(demand)
        served = result.served_matrix()
        assert served[0, 1]
        assert not served[1, 2]
        assert result.eps_residue[1, 2] > 0

    def test_stuffing_only_pairs_stripped(self):
        demand = np.zeros((3, 3))
        demand[0, 1] = 1000.0
        scheduler = BvnScheduler(3)
        result = scheduler.compute(demand)
        for matching, __ in result.matchings:
            for i, j in matching.pairs():
                assert demand[i, j] > 0

    def test_zero_demand_gives_empty_plan(self):
        scheduler = BvnScheduler(3)
        result = scheduler.compute(np.zeros((3, 3)))
        assert result.first.size == 0
