"""The hybrid-switch framework: Figure 2, assembled and runnable.

:class:`HybridSwitchFramework` is the top-level object a user of this
library touches: give it a :class:`~repro.core.config.FrameworkConfig`,
attach traffic, call :meth:`run`, get a
:class:`~repro.core.results.RunResult`.

    from repro import FrameworkConfig, HybridSwitchFramework
    from repro.traffic import PoissonSource

    config = FrameworkConfig(n_ports=8, scheduler="islip")
    framework = HybridSwitchFramework(config)
    for host in framework.hosts:
        PoissonSource(framework.sim, host, rate_bps=4e9,
                      rng=framework.sim.streams.stream(f"src{host.host_id}"))
    result = framework.run(duration_ps=2 * MILLISECONDS)

The construction order mirrors the paper's partition: hosts and links
(the "tens of processing elements"), then switching logic (OCS + EPS),
then processing logic, then the scheduling logic plugged in last — the
part a researcher would swap.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import FrameworkConfig
from repro.core.processing import ProcessingLogic
from repro.core.results import RunResult
from repro.core.scheduling import SchedulingLogic
from repro.core.switching import SwitchingLogic
from repro.hwmodel.presets import make_timing
from repro.hwmodel.timing import SchedulerTiming
from repro.net.classifier import FlowClassifier
from repro.net.topology import build_rack
from repro.schedulers.base import Scheduler
from repro.schedulers.demand import (
    DemandEstimator,
    EwmaEstimator,
    InstantEstimator,
    SketchEstimator,
)
from repro.schedulers.registry import create_scheduler
from repro.sim.engine import Simulator
from repro.sim.errors import ConfigurationError
from repro.switches.eps import ElectricalPacketSwitch
from repro.switches.ocs import OpticalCircuitSwitch


def _make_estimator(config: FrameworkConfig) -> DemandEstimator:
    if config.estimator == "instant":
        return InstantEstimator(config.n_ports, **config.estimator_kwargs)
    if config.estimator == "ewma":
        return EwmaEstimator(config.n_ports, **config.estimator_kwargs)
    if config.estimator == "sketch":
        return SketchEstimator(config.n_ports, seed=config.seed,
                               **config.estimator_kwargs)
    raise ConfigurationError(f"unknown estimator {config.estimator!r}")


class HybridSwitchFramework:
    """One rack, one hybrid switch, one pluggable scheduler.

    Parameters
    ----------
    config:
        Declarative experiment description.
    scheduler:
        Pre-built scheduler instance; overrides ``config.scheduler``.
        This is the rapid-prototyping hook: hand in anything satisfying
        :class:`~repro.schedulers.base.Scheduler`.
    timing:
        Pre-built timing model; overrides ``config.timing_preset``.
    classifier:
        Custom look-up rule table for the processing logic.
    optimistic_grant:
        Ablation flag — see :class:`~repro.core.scheduling.SchedulingLogic`.
    """

    def __init__(self, config: FrameworkConfig,
                 scheduler: Optional[Scheduler] = None,
                 timing: Optional[SchedulerTiming] = None,
                 classifier: Optional[FlowClassifier] = None,
                 optimistic_grant: bool = False) -> None:
        self.config = config
        self.sim = Simulator(seed=config.seed)
        self.topology = build_rack(
            self.sim, config.n_ports,
            link_rate_bps=config.port_rate_bps,
            propagation_ps=config.propagation_ps,
            mode=config.buffer_mode,
            clock_skew_ps=config.host_clock_skew_ps)
        self.ocs = OpticalCircuitSwitch(
            self.sim, config.n_ports,
            switching_time_ps=config.switching_time_ps)
        self.eps = ElectricalPacketSwitch(
            self.sim, config.n_ports,
            port_rate_bps=config.eps_rate_bps,
            queue_capacity_bytes=config.eps_queue_bytes)
        self.switching = SwitchingLogic(
            self.sim, self.ocs, self.eps, self.topology.downlinks)
        self.processing = ProcessingLogic(
            self.sim, config.n_ports,
            port_rate_bps=config.port_rate_bps,
            mode=config.buffer_mode,
            classifier=classifier,
            voq_capacity_bytes=config.voq_capacity_bytes,
            ocs_sink=self.switching.send_ocs,
            eps_sink=self.switching.send_eps)
        for uplink in self.topology.uplinks:
            uplink.connect(self.processing.ingress)
        self.scheduler = scheduler or create_scheduler(
            config.scheduler, n_ports=config.n_ports,
            **config.scheduler_kwargs)
        self.timing = timing or make_timing(config.timing_preset)
        self.estimator = _make_estimator(config)
        if config.estimator == "sketch":
            # Sketch estimation counts the packet stream, not queue
            # occupancy; tap the processing logic's ingress.  Occupancy
            # estimators are snapshot-driven and must NOT also see the
            # stream (they would double-count queued arrivals).
            self.processing.on_observe = self.estimator.observe
        self.scheduling = SchedulingLogic(
            self.sim, self.scheduler, self.timing, self.estimator,
            self.processing, self.switching,
            hosts=self.topology.hosts,
            mode=config.buffer_mode,
            epoch_ps=config.epoch_ps,
            default_slot_ps=config.default_slot_ps,
            control_delay_ps=config.control_delay_ps,
            optimistic_grant=optimistic_grant)
        self._ran = False

    # -- conveniences -------------------------------------------------------------

    @property
    def hosts(self):
        """The rack's hosts (attach traffic sources to these)."""
        return self.topology.hosts

    @property
    def n_ports(self) -> int:
        """Switch radix."""
        return self.config.n_ports

    # -- execution -------------------------------------------------------------------

    def run(self, duration_ps: int) -> RunResult:
        """Start the scheduling loop, simulate, and collect results."""
        if self._ran:
            raise ConfigurationError(
                "framework instances are single-shot; build a new one "
                "per run so results stay attributable")
        if duration_ps <= 0:
            raise ConfigurationError("duration must be positive")
        self._ran = True
        self.scheduling.start()
        self.sim.run(until=duration_ps)
        return self._collect(duration_ps)

    def _collect(self, duration_ps: int) -> RunResult:
        result = RunResult(
            duration_ps=duration_ps,
            n_ports=self.config.n_ports,
            port_rate_bps=self.config.port_rate_bps,
        )
        for host in self.hosts:
            result.delivered.extend(host.delivered_packets)
            result.offered_packets += host.emitted.count
            result.offered_bytes += host.emitted.bytes
        result.delivered_bytes = sum(p.size for p in result.delivered)
        result.ocs_bytes = sum(p.size for p in result.delivered
                               if p.via == "ocs")
        result.eps_bytes = sum(p.size for p in result.delivered
                               if p.via == "eps")
        result.drops = {
            "voq_tail": self.processing.voqs.drops_total(),
            "eps_tail": self.eps.drops_total(),
            "ocs_dark": self.ocs.dark_drops.count,
            "ocs_misdirected": self.ocs.misdirected_drops.count,
            "classifier": self.processing.classified_drops.count,
            "link_fault": sum(
                link.fault_drops.count
                for link in (self.topology.uplinks
                             + self.topology.downlinks)),
        }
        result.switch_peak_buffer_bytes = \
            self.processing.voqs.peak_total_bytes()
        result.host_peak_buffer_bytes = sum(
            host.peak_queued_bytes for host in self.hosts)
        result.eps_peak_buffer_bytes = self.eps.peak_queue_bytes()
        result.epochs_run = self.scheduling.epochs_run
        result.grants_issued = self.scheduling.grants_issued.count
        result.mean_loop_latency_ps = \
            self.scheduling.mean_loop_latency_ps()
        result.ocs_reconfigurations = self.ocs.reconfigurations
        result.ocs_blackout_ps = self.ocs.blackout_ps
        return result


__all__ = ["HybridSwitchFramework"]
