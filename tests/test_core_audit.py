"""Tests for the protocol auditor."""

import pytest

from repro.core.audit import AuditError, ProtocolAuditor
from repro.core.config import FrameworkConfig
from repro.core.framework import HybridSwitchFramework
from repro.sim.time import MICROSECONDS, MILLISECONDS
from repro.traffic.patterns import PermutationDestination
from repro.traffic.sources import PoissonSource


def _framework(optimistic=False, **overrides):
    defaults = dict(n_ports=4, switching_time_ps=10 * MICROSECONDS,
                    scheduler="hotspot",
                    scheduler_kwargs={"hold_ps": 50 * MICROSECONDS},
                    timing_preset="ideal",
                    epoch_ps=80 * MICROSECONDS,
                    default_slot_ps=50 * MICROSECONDS, seed=9)
    defaults.update(overrides)
    fw = HybridSwitchFramework(FrameworkConfig(**defaults),
                               optimistic_grant=optimistic)
    for host in fw.hosts:
        PoissonSource(
            fw.sim, host, rate_bps=0.3 * fw.config.port_rate_bps,
            chooser=PermutationDestination(4, host.host_id),
            rng=fw.sim.streams.stream(f"s{host.host_id}"))
    return fw


class TestCleanRun:
    def test_paper_ordering_is_clean(self):
        fw = _framework()
        auditor = ProtocolAuditor(fw)
        result = fw.run(3 * MILLISECONDS)
        auditor.check_conservation(result)
        auditor.assert_clean()
        assert auditor.configures_seen > 0
        assert auditor.grants_seen > 0
        assert auditor.packets_seen > 0

    def test_report_mentions_clean(self):
        fw = _framework()
        auditor = ProtocolAuditor(fw)
        fw.run(1 * MILLISECONDS)
        assert "CLEAN" in auditor.report()

    def test_counters_match_framework(self):
        fw = _framework()
        auditor = ProtocolAuditor(fw)
        result = fw.run(2 * MILLISECONDS)
        assert auditor.configures_seen == result.ocs_reconfigurations
        assert auditor.grants_seen == result.grants_issued


class TestViolations:
    def test_optimistic_grants_flagged(self):
        fw = _framework(optimistic=True)
        auditor = ProtocolAuditor(fw)
        fw.run(3 * MILLISECONDS)
        assert not auditor.is_clean()
        rules = {v.rule for v in auditor.violations}
        assert "configure-before-grant" in rules

    def test_assert_clean_raises_with_detail(self):
        fw = _framework(optimistic=True)
        auditor = ProtocolAuditor(fw)
        fw.run(3 * MILLISECONDS)
        with pytest.raises(AuditError, match="configure-before-grant"):
            auditor.assert_clean()

    def test_violation_str_has_time(self):
        fw = _framework(optimistic=True)
        auditor = ProtocolAuditor(fw)
        fw.run(3 * MILLISECONDS)
        assert "us" in str(auditor.violations[0]) or \
            "ms" in str(auditor.violations[0])
