"""E3 — utilisation vs scheduling period.

§1: "Slow schedulers can negatively impact the performance of the data
center network due to poor resource utilization."  We make that claim
measurable: fix the traffic and the algorithm, sweep the scheduling
epoch from microseconds to milliseconds, and measure achieved
utilisation.  Two effects compound as the epoch grows:

* stale schedules — demand shifts while the old circuits stay up;
* duty-cycle loss — each epoch pays one reconfiguration blackout,
  which is amortised well (short epochs relative to blackout are
  hopeless, very long epochs waste nothing on blackout but everything
  on staleness).

The ablation rerun with ``optimistic_grant=True`` shows why the paper's
configure-then-grant ordering matters: granting during the blackout
turns the blackout into packet loss instead of waiting.
"""

from __future__ import annotations

from typing import List

from repro.analysis.tables import render_table
from repro.experiments.base import ExperimentConfig, ExperimentReport
from repro.scenario import Scenario, TrafficPhase
from repro.sim.time import (
    MICROSECONDS,
    MILLISECONDS,
    format_time,
)

N_PORTS = 8
SWITCHING_PS = 20 * MICROSECONDS

#: Overrides this experiment honours (``repro run e3 --set ...``).
KNOWN_OVERRIDES = frozenset(
    {"epochs_ps", "duration_ps", "load", "n_ports"})


def _scenario(epoch_ps: int, duration_ps: int, load: float,
              optimistic: bool, seed: int,
              n_ports: int = N_PORTS,
              scheduler: str = "hotspot") -> Scenario:
    """One sweep point as a Scenario derivation."""
    return Scenario(
        name="e3-point",
        n_ports=n_ports,
        switching_time_ps=SWITCHING_PS,
        scheduler=scheduler,
        timing_preset="netfpga_sume",
        epoch_ps=epoch_ps,
        default_slot_ps=max(epoch_ps - SWITCHING_PS, 10 * MICROSECONDS),
        optimistic_grant=optimistic,
        duration_ps=duration_ps,
        seed=seed,
        traffic=(TrafficPhase(
            pattern="uniform", source="onoff", load=load,
            source_kwargs={"mean_on_ps": 150 * MICROSECONDS,
                           "mean_off_ps": 150 * MICROSECONDS}),),
    )


def _run_point(epoch_ps: int, duration_ps: int, load: float,
               optimistic: bool, seed: int,
               n_ports: int = N_PORTS,
               scheduler: str = "hotspot") -> "tuple[float, int]":
    result = _scenario(epoch_ps, duration_ps, load, optimistic, seed,
                       n_ports=n_ports, scheduler=scheduler).build().run()
    return result.utilisation(), result.total_drops


def run(config: ExperimentConfig) -> ExperimentReport:
    """Utilisation vs epoch period, plus the grant-ordering ablation."""
    report = ExperimentReport(
        experiment_id="e3",
        title="utilisation vs scheduling period (slow schedulers waste "
              "capacity)",
    )
    report.check_overrides(config, KNOWN_OVERRIDES)
    epochs = list(config.get("epochs_ps", (
        [100 * MICROSECONDS, 500 * MICROSECONDS, 2 * MILLISECONDS]
        if config.quick else
        [50 * MICROSECONDS, 100 * MICROSECONDS, 250 * MICROSECONDS,
         500 * MICROSECONDS, 1 * MILLISECONDS, 2 * MILLISECONDS,
         5 * MILLISECONDS]
    )))
    duration = config.get(
        "duration_ps",
        6 * MILLISECONDS if config.quick else 20 * MILLISECONDS)
    load = config.get("load", 0.35)
    n_ports = config.get("n_ports", N_PORTS)
    scheduler = config.scheduler or "hotspot"
    seed = config.derive_seed(3)
    rows: List[List[str]] = []
    utils = []
    for epoch_ps in epochs:
        util, drops = _run_point(epoch_ps, duration, load,
                                 optimistic=False, seed=seed,
                                 n_ports=n_ports, scheduler=scheduler)
        utils.append(util)
        rows.append([format_time(epoch_ps), f"{util:.3f}", str(drops)])
    report.tables.append(render_table(
        ["epoch period", "utilisation", "drops"], rows,
        title=f"{scheduler} scheduler, {n_ports}x10G, "
              f"switching={format_time(SWITCHING_PS)}, "
              f"offered load {load:.2f}"))
    report.data["epochs_ps"] = epochs
    report.data["utilisation"] = utils
    if utils[0] > utils[-1]:
        report.expectations.append(
            f"utilisation falls from {utils[0]:.3f} (fast epochs) to "
            f"{utils[-1]:.3f} (slow epochs) — the paper's 'poor resource "
            "utilization' claim")
    # Ablation: optimistic grants (windows open during the blackout).
    mid_epoch = epochs[len(epochs) // 2]
    util_ordered, drops_ordered = _run_point(
        mid_epoch, duration, load, optimistic=False, seed=seed,
        n_ports=n_ports, scheduler=scheduler)
    util_optimistic, drops_optimistic = _run_point(
        mid_epoch, duration, load, optimistic=True, seed=seed,
        n_ports=n_ports, scheduler=scheduler)
    report.tables.append(render_table(
        ["grant ordering", "utilisation", "drops"],
        [
            ["configure-then-grant (paper)", f"{util_ordered:.3f}",
             str(drops_ordered)],
            ["optimistic (grant during blackout)",
             f"{util_optimistic:.3f}", str(drops_optimistic)],
        ],
        title=f"grant-ordering ablation at epoch={format_time(mid_epoch)}"))
    report.data["ablation"] = {
        "ordered": {"utilisation": util_ordered, "drops": drops_ordered},
        "optimistic": {"utilisation": util_optimistic,
                       "drops": drops_optimistic},
    }
    if drops_optimistic > drops_ordered:
        report.expectations.append(
            "optimistic grants lose packets to the blackout "
            f"({drops_optimistic} vs {drops_ordered} drops) — the "
            "paper's configure-then-grant ordering is load-bearing")
    return report


def run_e3(quick: bool = False) -> ExperimentReport:
    """Historical entry point; see :func:`run`."""
    return run(ExperimentConfig(quick=quick))


__all__ = ["run", "run_e3", "KNOWN_OVERRIDES"]
