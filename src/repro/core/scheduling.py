"""Scheduling logic: the user-pluggable slot, with its timing model.

Figure 2, top block.  Each scheduling epoch performs the paper's loop:

1. **estimate the demand matrix** — from VOQ occupancy (switch-buffered)
   or polled host queues (host-buffered), through the configured
   :class:`~repro.schedulers.demand.DemandEstimator`;
2. **run the scheduling algorithm** — any
   :class:`~repro.schedulers.base.Scheduler`;
3. wait out the **loop latency** that the
   :class:`~repro.hwmodel.timing.SchedulerTiming` model assigns to this
   implementation technology (this is where "hardware vs software"
   enters the simulation);
4. **configure the OCS first, then grant** — the paper is explicit:
   "Before providing a grant to the processing logic, the scheduler
   sends the grant matrix to the switching logic to configure the
   circuits"; the grant window only opens when the circuits are live.
   (The ``optimistic_grant`` ablation flips this ordering to show why
   the paper's ordering matters.)
5. divert scheduler-designated **residue to the EPS**;
6. when the plan is exhausted, start the next epoch.

The effective epoch period is therefore ``max(epoch_ps, loop latency +
plan execution)`` — a millisecond-class software model cannot schedule
faster than once per millisecond no matter what ``epoch_ps`` asks for,
which is precisely the paper's point.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.core.messages import CircuitConfig, Grant
from repro.core.processing import ProcessingLogic
from repro.core.switching import SwitchingLogic
from repro.hwmodel.timing import LatencyBreakdown, SchedulerTiming
from repro.net.host import Host, HostBufferMode
from repro.schedulers.base import Scheduler, ScheduleResult
from repro.schedulers.demand import DemandEstimator
from repro.sim.engine import Simulator
from repro.sim.errors import ConfigurationError
from repro.sim.trace import Counter


class SchedulingLogic:
    """Drives the scheduling loop over the other two logic blocks.

    Parameters
    ----------
    sim:
        Simulator.
    scheduler / timing / estimator:
        The three pluggable stages.
    processing / switching:
        The other two Figure 2 blocks.
    hosts:
        Needed in host-buffered mode for demand polling and grant
        delivery; may be ``None`` in switch-buffered mode.
    mode:
        Buffering regime.
    epoch_ps:
        Minimum epoch period (0 = run back to back).
    default_slot_ps:
        Hold time for matchings that carry none (cell-mode schedulers).
    control_delay_ps:
        Grant-delivery delay to hosts (host-buffered mode only).
    optimistic_grant:
        Ablation: open grant windows at configure time instead of
        OCS-ready time, exposing traffic to the blackout.
    """

    def __init__(self, sim: Simulator, scheduler: Scheduler,
                 timing: SchedulerTiming,
                 estimator: DemandEstimator,
                 processing: ProcessingLogic,
                 switching: SwitchingLogic,
                 hosts: Optional[List[Host]] = None,
                 mode: HostBufferMode = HostBufferMode.SWITCH_BUFFERED,
                 epoch_ps: int = 0,
                 default_slot_ps: int = 1,
                 control_delay_ps: int = 0,
                 optimistic_grant: bool = False) -> None:
        if mode is HostBufferMode.HOST_BUFFERED and not hosts:
            raise ConfigurationError(
                "host-buffered scheduling needs the host list")
        if default_slot_ps <= 0:
            raise ConfigurationError("default_slot_ps must be > 0")
        self.sim = sim
        self.scheduler = scheduler
        self.timing = timing
        self.estimator = estimator
        self.processing = processing
        self.switching = switching
        self.hosts = hosts or []
        self.mode = mode
        self.epoch_ps = epoch_ps
        self.default_slot_ps = default_slot_ps
        self.control_delay_ps = control_delay_ps
        self.optimistic_grant = optimistic_grant
        self._started = False
        self._stall_until = 0
        self.epochs_run = 0
        self.stalls_deferred = 0
        self.grants_issued = Counter("scheduling.grants")
        self.latency_breakdowns: List[LatencyBreakdown] = []
        #: Hook called after each epoch's compute (experiments observe
        #: demand/schedules without subclassing).
        self.on_schedule: Optional[
            Callable[[np.ndarray, ScheduleResult], None]] = None

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Kick off the first epoch at the current simulated time."""
        if self._started:
            raise ConfigurationError("scheduling logic already started")
        self._started = True
        self.sim.schedule(0, self._epoch, label="sched.epoch")

    # -- demand ----------------------------------------------------------------

    def _occupancy_matrix(self) -> np.ndarray:
        """Raw occupancy: VOQs (fast mode) or host queues (slow mode)."""
        if self.mode is HostBufferMode.SWITCH_BUFFERED:
            return self.processing.demand_bytes()
        n = self.switching.n_ports
        matrix = np.zeros((n, n), dtype=np.float64)
        for host in self.hosts:
            for dst in range(n):
                if dst != host.host_id:
                    matrix[host.host_id, dst] = host.queued_bytes_to(dst)
        return matrix

    # -- the loop ----------------------------------------------------------------

    def stall_until(self, resume_ps: int) -> None:
        """Freeze the loop until ``resume_ps`` (fault injection).

        Epochs that would begin during the stall are deferred to its
        end; grants already issued keep draining.
        """
        self._stall_until = max(self._stall_until, resume_ps)

    def _epoch(self) -> None:
        if self.sim.now < self._stall_until:
            self.stalls_deferred += 1
            self.sim.at(self._stall_until, self._epoch,
                        label="sched.epoch.stalled")
            return
        epoch_start = self.sim.now
        self.epochs_run += 1
        self.estimator.snapshot(self._occupancy_matrix())
        demand = self.estimator.estimate()
        result = self.scheduler.compute(demand)
        breakdown = self.timing.breakdown(
            self.scheduler.name, self.switching.n_ports,
            self.scheduler.last_stats)
        self.latency_breakdowns.append(breakdown)
        if self.on_schedule is not None:
            self.on_schedule(demand, result)
        self.estimator.reset_epoch()

        def act() -> None:
            self._execute_plan(result, epoch_start)

        self.sim.schedule(breakdown.total_ps, act, label="sched.act")

    def _execute_plan(self, result: ScheduleResult,
                      epoch_start: int) -> None:
        if (result.eps_residue is not None
                and self.mode is HostBufferMode.SWITCH_BUFFERED):
            self.processing.divert_to_eps(result.eps_residue)
        plan = result.matchings

        def run_slot(index: int) -> None:
            if index >= len(plan):
                self._schedule_next_epoch(epoch_start)
                return
            matching, hold_ps = plan[index]
            hold_eff = hold_ps if hold_ps > 0 else self.default_slot_ps
            ready_ps = self.switching.configure(
                CircuitConfig(matching, self.sim.now))
            window_start = self.sim.now if self.optimistic_grant else ready_ps
            grant = Grant(matching, window_start, hold_eff, self.sim.now)
            self._deliver_grant(grant)
            slot_end = max(ready_ps, window_start) + hold_eff
            self.sim.at(slot_end, lambda: run_slot(index + 1),
                        label="sched.slot")

        run_slot(0)

    def _deliver_grant(self, grant: Grant) -> None:
        self.grants_issued.add(1)
        if self.mode is HostBufferMode.SWITCH_BUFFERED:
            self.processing.apply_grant(grant)
            return

        def notify_hosts() -> None:
            for src, dst in grant.matching.pairs():
                if src < len(self.hosts):
                    self.hosts[src].grant(dst, grant.start_ps,
                                          grant.duration_ps)

        self.sim.schedule(self.control_delay_ps, notify_hosts,
                          label="sched.notify")

    def _schedule_next_epoch(self, epoch_start: int) -> None:
        earliest = epoch_start + self.epoch_ps
        # Guard against a zero-length loop: always advance by >= 1ps,
        # and never faster than the loop's own latency floor.
        next_at = max(earliest, self.sim.now, epoch_start + 1)
        if next_at <= self.sim.now:
            next_at = self.sim.now + 1
        self.sim.at(next_at, self._epoch, label="sched.epoch")

    # -- reporting ---------------------------------------------------------------

    def mean_loop_latency_ps(self) -> float:
        """Average scheduling-loop latency across epochs so far."""
        if not self.latency_breakdowns:
            return 0.0
        return sum(b.total_ps for b in self.latency_breakdowns) \
            / len(self.latency_breakdowns)


__all__ = ["SchedulingLogic"]
