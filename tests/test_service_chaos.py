"""Chaos tests: whole campaigns through a fault-injecting proxy.

Where tests/test_service.py asserts each durability mechanism in
isolation (journal replay, flap reclaim, cache transport, backoff),
this file *proves the composition*: a client or worker talking to the
daemon through :class:`repro.service.chaos.ChaosProxy` — which drops,
truncates and delays protocol frames on a seeded schedule — must still
complete its campaign with byte-identical results and zero visible
loss.  The daemon-crash drill goes further: a subprocess ``repro
serve`` is SIGKILLed mid-campaign and restarted with ``--resume``.

Fault schedules are seeded (``random.Random(f"{seed}:{conn}:{dir}")``)
so every run of this file replays the same misbehaviour; the seeds
below were chosen so the interesting faults actually fire.
"""

import collections
import os
import pathlib
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

import pytest

from repro import experiments
from repro.experiments.base import ExperimentReport
from repro.runner import RunSpec, execute
from repro.runner.cache import report_to_payload
from repro.service import (
    ReproDaemon,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    execute_via_server,
)
from repro.service.chaos import ChaosConfig, ChaosProxy
from repro.service.protocol import write_frame

SRC_DIR = str(pathlib.Path(__file__).parent.parent / "src")


def _wait_until(predicate, timeout=15.0, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {what}")


@pytest.fixture
def start_daemon(tmp_path):
    """Factory: a live in-process daemon thread on an ephemeral port."""
    running = []

    def start(**kwargs):
        kwargs.setdefault("jobs", 1)
        kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
        kwargs.setdefault("quiet", True)
        daemon = ReproDaemon("127.0.0.1:0", **kwargs)
        thread = threading.Thread(target=daemon.run, daemon=True)
        thread.start()
        assert daemon.wait_ready(10), "daemon never bound"
        running.append((daemon, thread))
        return daemon

    yield start
    for daemon, thread in running:
        daemon.request_shutdown()
        thread.join(timeout=15)
        assert not thread.is_alive(), "daemon failed to drain"


@pytest.fixture
def fake_experiment(monkeypatch):
    """A fast in-process entry point registered as ``echaos``."""

    class Fake:
        def __init__(self):
            self.calls = collections.Counter()
            self.lock = threading.Lock()

        def __call__(self, config):
            with self.lock:
                self.calls[config.seed] += 1
            return ExperimentReport(
                experiment_id="echaos", title="chaos test",
                data={"seed": config.seed},
                expectations=[f"seed {config.seed} ok"])

        def spec(self, seed=0):
            return RunSpec("echaos", seed=seed)

    fake = Fake()
    monkeypatch.setitem(experiments.ENTRY_POINTS, "echaos", fake)
    return fake


class TestProxyMechanics:
    def test_passthrough_preserves_byte_identity(self, start_daemon,
                                                 fake_experiment):
        daemon = start_daemon()
        specs = [fake_experiment.spec(seed) for seed in range(3)]
        direct = execute_via_server(daemon.bound_address, specs)
        with ChaosProxy(daemon.bound_address) as proxy:
            proxied = execute_via_server(proxy.bound_address, specs)
        assert [report_to_payload(o.report) for o in direct] == \
            [report_to_payload(o.report) for o in proxied]
        counters = proxy.counters.snapshot()
        assert counters["forwarded"] > 0
        assert counters["dropped"] == 0
        assert counters["truncated"] == 0
        # Per-direction split: submits flowed up, results flowed
        # down, and the two tallies account for every frame.
        assert counters["forwarded_up"] > 0
        assert counters["forwarded_down"] > 0
        assert counters["forwarded_up"] + counters["forwarded_down"] \
            == counters["forwarded"]

    def test_listen_must_be_tcp(self):
        with pytest.raises(ValueError, match="host:port"):
            ChaosProxy("127.0.0.1:1", listen="/tmp/some.sock")

    def test_seeded_schedule_replays_identically(self):
        # The same seed against the same frame sequence must make the
        # same drop decision at the same frame — a failing chaos run
        # is reproducible from its seed alone.
        def run_once():
            sink = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sink.bind(("127.0.0.1", 0))
            sink.listen(1)

            def drain():
                conn, _ = sink.accept()
                while True:
                    try:
                        if not conn.recv(65536):
                            return
                    except OSError:
                        return

            thread = threading.Thread(target=drain, daemon=True)
            thread.start()
            host, port = sink.getsockname()
            proxy = ChaosProxy(
                f"{host}:{port}", seed=99,
                config=ChaosConfig(p_disconnect=0.2))
            proxy.start()
            phost, pport = proxy.bound_address.split(":")
            client = socket.create_connection((phost, int(pport)))
            sent = 0
            try:
                for i in range(200):
                    write_frame(client, {"type": "noise", "i": i})
                    sent += 1
            except OSError:
                pass  # the scheduled drop killed the connection
            # Let the pump finish counting what it saw.
            time.sleep(0.2)
            snapshot = proxy.counters.snapshot()
            client.close()
            proxy.stop()
            sink.close()
            return snapshot["forwarded"], snapshot["dropped"]

        first = run_once()
        second = run_once()
        assert first == second
        assert first[1] == 1  # the drop fired, and fired once

    def test_min_frames_protects_the_handshake(self, start_daemon,
                                               fake_experiment):
        # p_disconnect=1.0 kills on the first eligible frame; with
        # min_frames=4 the handshake and one submit/result exchange
        # still complete before the axe falls.
        daemon = start_daemon()
        with ChaosProxy(daemon.bound_address, seed=1,
                        config=ChaosConfig(p_disconnect=1.0,
                                           min_frames=4)) as proxy:
            outcomes = execute_via_server(
                proxy.bound_address, [fake_experiment.spec(0)],
                retry=RetryPolicy(max_attempts=0))
        assert outcomes[0].error is None


class TestChaoticClient:
    def test_flaky_client_campaign_completes(self, start_daemon,
                                             fake_experiment):
        # Every reconnect opens a new proxy connection (fresh seeded
        # schedule); backoff plus resubmit-into-cache must converge.
        daemon = start_daemon()
        specs = [fake_experiment.spec(seed) for seed in range(6)]
        direct = execute_via_server(daemon.bound_address, specs)
        with ChaosProxy(daemon.bound_address, seed=1234,
                        config=ChaosConfig(p_disconnect=0.12,
                                           p_delay=0.2,
                                           delay_s=0.01,
                                           min_frames=2)) as proxy:
            chaotic = execute_via_server(
                proxy.bound_address, specs,
                retry=RetryPolicy(max_attempts=40, base_delay_s=0.01,
                                  max_delay_s=0.05))
        assert [o.error for o in chaotic] == [None] * 6
        assert [report_to_payload(o.report) for o in chaotic] == \
            [report_to_payload(o.report) for o in direct]
        # The chaos was real: frames were dropped, connections died,
        # and nothing executed twice anyway.
        assert proxy.counters.snapshot()["dropped"] >= 1
        assert all(count == 1
                   for count in fake_experiment.calls.values())

    def test_truncated_frames_dont_poison_the_client(
            self, start_daemon, fake_experiment):
        daemon = start_daemon()
        specs = [fake_experiment.spec(seed) for seed in range(4)]
        with ChaosProxy(daemon.bound_address, seed=77,
                        config=ChaosConfig(p_truncate=0.10,
                                           min_frames=2)) as proxy:
            outcomes = execute_via_server(
                proxy.bound_address, specs,
                retry=RetryPolicy(max_attempts=40, base_delay_s=0.01,
                                  max_delay_s=0.05))
        assert [o.error for o in outcomes] == [None] * 4
        assert all(count == 1
                   for count in fake_experiment.calls.values())


class TestChaoticWorker:
    def test_flaky_worker_campaign_completes(self, start_daemon,
                                             fake_experiment,
                                             tmp_path):
        from repro.service.worker import ReproWorker

        daemon = start_daemon(local_execution=False,
                              lease_timeout_s=5.0)
        specs = [fake_experiment.spec(seed) for seed in range(8)]
        with ChaosProxy(daemon.bound_address, seed=4242,
                        config=ChaosConfig(p_disconnect=0.05,
                                           p_truncate=0.03,
                                           p_delay=0.2,
                                           delay_s=0.01,
                                           min_frames=3)) as proxy:
            # jobs=1 executes in-process so the entry-point Counter is
            # actually shared with this test (a forked pool's isn't).
            # The local cache_dir is what makes exactly-once possible
            # at all: when the proxy swallows an upload, the reclaimed
            # lease replays from the worker's disk instead of calling
            # the entry point again.
            worker = ReproWorker(
                proxy.bound_address, jobs=1, quiet=True,
                cache_dir=str(tmp_path / "worker-cache"),
                retry=RetryPolicy(max_attempts=60, base_delay_s=0.02,
                                  max_delay_s=0.1))
            handle = threading.Thread(target=worker.run, daemon=True)
            handle.start()
            assert worker.wait_registered(10)
            outcomes = execute_via_server(daemon.bound_address, specs)
            worker.stop()
            handle.join(timeout=15)
        assert [o.error for o in outcomes] == [None] * 8
        assert [o.report.data["seed"] for o in outcomes] == \
            list(range(8))
        # Exactly-once execution held through every flap: results
        # finished on a dead connection arrived later as cache-push.
        assert all(count == 1
                   for count in fake_experiment.calls.values())
        assert proxy.counters.snapshot()["dropped"] \
            + proxy.counters.snapshot()["truncated"] >= 1


def _spawn_daemon(socket_path, cache_dir, log_path, *resume_flag):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR
    log = open(log_path, "ab")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--socket", socket_path, "--cache-dir", cache_dir,
         "--jobs", "1", *resume_flag],
        env=env, stdout=log, stderr=log)


class TestDaemonCrashRecovery:
    """The tentpole drill: SIGKILL the daemon mid-campaign, restart
    with --resume, and demand a byte-identical manifest."""

    @pytest.mark.slow
    def test_sigkill_resume_byte_identity(self, tmp_path):
        specs = [RunSpec("e4", quick=True, seed=seed)
                 for seed in range(8)]
        cache_dir = str(tmp_path / "crash-cache")
        log_path = tmp_path / "daemon.log"
        with tempfile.TemporaryDirectory(dir="/tmp") as sock_dir:
            socket_path = f"{sock_dir}/chaos-svc.sock"
            daemon_a = _spawn_daemon(socket_path, cache_dir, log_path)
            try:
                _wait_until(lambda: os.path.exists(socket_path),
                            timeout=30, what="daemon A to bind")
                results = []
                client = threading.Thread(
                    target=lambda: results.append(execute_via_server(
                        socket_path, specs,
                        retry=RetryPolicy(max_attempts=60,
                                          base_delay_s=0.2,
                                          max_delay_s=1.0))),
                    daemon=True)
                client.start()

                def some_settled_not_all():
                    try:
                        with ServiceClient(socket_path,
                                           timeout=5.0) as c:
                            stats = c.stats()
                    except (ServiceError, OSError):
                        return False
                    done = stats["executed"] + stats["cache_hits"]
                    return 1 <= done < len(specs)

                _wait_until(some_settled_not_all, timeout=60,
                            what="a partial settlement window")
                daemon_a.send_signal(signal.SIGKILL)
                daemon_a.wait(timeout=10)
                # The socket file of the murdered daemon lingers;
                # daemon B unlinks and rebinds it on startup.
                daemon_b = _spawn_daemon(socket_path, cache_dir,
                                         log_path)
                try:
                    client.join(timeout=120)
                    assert not client.is_alive(), \
                        "client never recovered from the daemon crash"
                    (outcomes,) = results
                    # Zero client-visible loss...
                    assert [o.error for o in outcomes] == [None] * 8
                    # ... the journal actually replayed something ...
                    with ServiceClient(socket_path, timeout=10.0) as c:
                        stats = c.stats()
                    assert stats["recovered_jobs"] >= 1
                    assert stats["journal"] and stats["resume"]
                    # ... and the manifest is byte-identical to a
                    # local run that never saw a daemon at all.
                    local = execute(specs, jobs=1)
                    assert [report_to_payload(o.report)
                            for o in outcomes] == \
                        [report_to_payload(o.report) for o in local]
                finally:
                    daemon_b.terminate()
                    daemon_b.wait(timeout=30)
            finally:
                if daemon_a.poll() is None:
                    daemon_a.kill()
                daemon_a.wait(timeout=10)

    @pytest.mark.slow
    def test_no_resume_starts_with_a_clean_slate(self, tmp_path):
        # --no-resume after a crash must not replay the journal.
        cache_dir = str(tmp_path / "no-resume-cache")
        log_path = tmp_path / "daemon.log"
        with tempfile.TemporaryDirectory(dir="/tmp") as sock_dir:
            socket_path = f"{sock_dir}/nr-svc.sock"
            from repro.service import ServiceJournal, journal_path

            spec = RunSpec("e4", quick=True, seed=3)
            journal = ServiceJournal(journal_path(cache_dir))
            journal.record_queued(spec.key(), spec.canonical())
            journal.close()
            daemon = _spawn_daemon(socket_path, cache_dir, log_path,
                                   "--no-resume")
            try:
                _wait_until(lambda: os.path.exists(socket_path),
                            timeout=30, what="the daemon to bind")
                with ServiceClient(socket_path, timeout=10.0) as c:
                    stats = c.stats()
                assert stats["recovered_jobs"] == 0
                assert stats["resume"] is False
            finally:
                daemon.terminate()
                daemon.wait(timeout=30)
