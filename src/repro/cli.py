"""Command-line entry point: ``repro``.

Run paper experiments by id, in parallel, against a result cache; run
declarative scenarios from the library; or expand parameter sweeps
into job plans::

    repro list                       # experiments + schedulers + presets
    repro run e1                     # full-size experiment
    repro run e5 --quick             # reduced-size for smoke checks
    repro run all --quick --jobs 4   # the suite, 4 worker processes
    repro run all --cache-dir .repro-cache   # warm reruns are instant
    repro sweep e5 --replicas 3 --base-seed 1 --set n_ports=8,16 --jobs 4
    repro scenario list              # the named workload library
    repro scenario show incast       # canonical JSON of one scenario
    repro scenario run incast --quick --jobs 2 --set n_ports=16
    repro perf --quick               # microbench suite -> BENCH_<rev>.json
    repro perf --baseline benchmarks/baselines   # advisory diff
    repro serve --jobs 4             # always-on sweep daemon + cache
    repro run all --quick --server   # route a run through the daemon
    repro worker --connect host:7461 # join a daemon's worker fleet
    repro service stats --json       # live daemon counters
    repro service workers            # the registered worker fleet
    repro service shutdown           # drain in-flight work, then stop
    repro run e5 --job-timeout 60 --job-memory-mb 2048   # governed run
    repro cache stats --cache-dir .repro-cache   # footprint + headroom
    repro cache verify               # fsck: digest + key re-check
    repro cache gc --target-mb 512   # evict coldest down to 512 MiB

``run``, ``sweep`` and ``scenario run`` are thin frontends over
``repro.runner``: they plan deterministic job lists, execute them
(optionally across worker processes and against a content-addressed
cache) and print the familiar per-experiment reports plus a run
manifest.  Scenario jobs (``scenario:<name>``) share the whole
pipeline, so caching, sharding and ``--jobs`` behave identically.

With ``--server [ADDR]`` the same commands route their job plans to a
running ``repro serve`` daemon instead of executing locally: the
daemon owns the worker pool and the shared result cache, deduplicates
identical jobs across clients (including concurrent in-flight ones),
and streams back the exact reports a local run would have produced.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import pathlib
import signal
import sys
import threading
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments import ENTRY_POINTS, EXPERIMENTS, experiment_summaries
from repro.hwmodel.presets import TIMING_PRESETS
from repro.runner import (
    ResourceLimits,
    ResultCache,
    RunSpec,
    execute,
    merge_outcomes,
    plan_runs,
    shard,
    write_json_report,
)
from repro.runner.manifest import RunManifest
from repro.runner.spec import SCENARIO_PREFIX
from repro.scenario import (
    available_scenarios,
    configure,
    get_scenario,
    scenario_summaries,
)
from repro.schedulers.registry import (
    available_schedulers,
    scheduler_summaries,
)
from repro.sim.errors import ConfigurationError


def _resolve_experiments(requested: Sequence[str]) -> Optional[List[str]]:
    """Expand ``all`` and validate ids; ``None`` (+stderr) on error.

    ``scenario:<name>`` ids are accepted alongside experiment ids, so
    ``repro run``/``repro sweep`` mix both job families freely.  Any
    registered entry point is runnable by explicit id (that admits the
    ``probe`` diagnostic), but ``all`` expands to the paper suite only.
    """
    ids: List[str] = []
    for name in requested:
        if name == "all":
            ids.extend(exp_id for exp_id in sorted(EXPERIMENTS)
                       if exp_id not in ids)
            continue
        if name.startswith(SCENARIO_PREFIX):
            try:
                get_scenario(name[len(SCENARIO_PREFIX):])
            except ConfigurationError as exc:
                print(str(exc), file=sys.stderr)
                return None
        elif name not in ENTRY_POINTS:
            print(f"unknown experiment {name!r}; "
                  f"try: {', '.join(sorted(EXPERIMENTS))} or "
                  f"{SCENARIO_PREFIX}<name>",
                  file=sys.stderr)
            return None
        if name not in ids:
            ids.append(name)
    return ids


def _parse_value(text: str) -> Any:
    """A ``--set`` value: JSON when it parses, bare string otherwise."""
    try:
        return json.loads(text)
    except ValueError:
        return text


def _parse_overrides(pairs: Sequence[str]) -> Optional[Dict[str, Any]]:
    """``k=v`` pairs for ``run``; ``None`` (+stderr) on a bad pair."""
    overrides: Dict[str, Any] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            print(f"bad --set {pair!r}; expected key=value",
                  file=sys.stderr)
            return None
        overrides[key] = _parse_value(value)
    return overrides


def _parse_grid(pairs: Sequence[str]) -> Optional[Dict[str, List[Any]]]:
    """``k=v1,v2,...`` pairs for ``sweep``: each key is a grid axis.

    A value that parses as a JSON list *is* the axis (so
    ``--set "loads=[0.1, 0.5]"`` sweeps two scalar loads, and a
    list-of-lists sweeps list-valued overrides); otherwise the value is
    split on commas and each piece parsed individually.
    """
    grid: Dict[str, List[Any]] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            print(f"bad --set {pair!r}; expected key=v1,v2,...",
                  file=sys.stderr)
            return None
        parsed = _parse_value(value)
        if isinstance(parsed, list):
            grid[key] = parsed
        else:
            grid[key] = [_parse_value(piece)
                         for piece in value.split(",")]
    return grid


#: Default daemon address shared by ``repro serve`` and the service
#: subcommands, so the common single-machine setup needs no flags.
DEFAULT_SERVICE_SOCKET = ".repro-serve.sock"


def _make_limits(args: argparse.Namespace):
    """``(ok, limits)`` from the governance flags (None when unset)."""
    timeout_s = getattr(args, "job_timeout", None)
    memory_mb = getattr(args, "job_memory_mb", None)
    if timeout_s is None and memory_mb is None:
        return True, None
    try:
        return True, ResourceLimits(timeout_s=timeout_s,
                                    memory_mb=memory_mb)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return False, None


def _run_specs(args: argparse.Namespace, specs, on_outcome=None):
    """Execute ``specs`` locally or via ``--server``.

    Returns the outcome list, or ``None`` after printing a one-line
    error (callers exit 2).  With ``--server``, execution settings are
    the daemon's own — the local ``--jobs``/``--cache-dir``/
    ``--replica-batch``/``--job-timeout``/``--job-memory-mb`` flags
    are noted as ignored rather than silently dropped.
    """
    if getattr(args, "server", None):
        from repro.service import ServiceError, execute_via_server

        ignored = [flag for flag, on in (
            ("--jobs", args.jobs > 1),
            ("--cache-dir", bool(args.cache_dir)),
            ("--replica-batch", args.replica_batch),
            ("--job-timeout",
             getattr(args, "job_timeout", None) is not None),
            ("--job-memory-mb",
             getattr(args, "job_memory_mb", None) is not None),
        ) if on]
        if ignored:
            print(f"note: {', '.join(ignored)} are daemon-side "
                  "settings; ignored with --server", file=sys.stderr)
        from repro.service import RetryPolicy

        retry = RetryPolicy(
            max_attempts=max(0, getattr(args, "retry_max", 5)),
            base_delay_s=max(0.0, getattr(args, "retry_base", 0.2)))
        try:
            return execute_via_server(args.server, specs,
                                      on_outcome=on_outcome,
                                      retry=retry)
        except (ServiceError, ValueError, OSError) as exc:
            # ValueError: a malformed --server failover list.
            print(f"--server {args.server}: {exc}", file=sys.stderr)
            return None
    ok, cache = _make_cache(args)
    if not ok:
        return None
    ok, limits = _make_limits(args)
    if not ok:
        return None
    return execute(specs, jobs=args.jobs, cache=cache,
                   on_outcome=on_outcome,
                   replica_batch=args.replica_batch,
                   limits=limits)


def _make_cache(args: argparse.Namespace):
    """``(ok, cache)``; complains on stderr when the path is unusable."""
    if not args.cache_dir:
        return True, None
    path = pathlib.Path(args.cache_dir)
    if path.exists() and not path.is_dir():
        print(f"--cache-dir {args.cache_dir!r} exists and is not a "
              "directory", file=sys.stderr)
        return False, None
    return True, ResultCache(path)


def _finish(outcomes, args: argparse.Namespace,
            show_manifest: bool) -> int:
    """Render/persist a run's outcomes; the exit code to return.

    Crash-failed jobs (``RunOutcome.error``) are already FAIL rows in
    the manifest, but automation reads exit codes: any failed job makes
    the whole invocation exit 1.
    """
    if show_manifest:
        print(RunManifest.from_outcomes(outcomes).render())
        print()
    if args.json_out:
        write_json_report(outcomes, args.json_out)
    failed = [o for o in outcomes if o.error is not None]
    if failed:
        print(f"{len(failed)} job(s) failed; see the manifest FAIL "
              "rows", file=sys.stderr)
        return 1
    return 0


def _print_catalogue(header: str, summaries: Dict[str, str]) -> None:
    print(f"{header}:")
    width = max((len(name) for name in summaries), default=0)
    for name, doc in summaries.items():
        line = f"  {name:<{width}}"
        print(f"{line}  {doc}" if doc else line)


def _cmd_list(_args: argparse.Namespace) -> int:
    _print_catalogue("experiments", experiment_summaries())
    _print_catalogue("schedulers", scheduler_summaries())
    _print_catalogue("scenarios", scenario_summaries())
    print("timing presets:")
    for name in sorted(TIMING_PRESETS):
        print(f"  {name}")
    return 0


def _check_scheduler(args: argparse.Namespace) -> bool:
    """Validate --scheduler against the registry before any job runs."""
    if args.scheduler and args.scheduler not in available_schedulers():
        print(f"unknown scheduler {args.scheduler!r}; "
              f"try: {', '.join(available_schedulers())}",
              file=sys.stderr)
        return False
    return True


def _check_scenario_specs(specs) -> bool:
    """Dry-run the derivation of every scenario-backed spec.

    A bad ``--set`` path (or any spec-level inconsistency) must fail
    here with a one-line stderr message, not traceback inside a worker
    process mid-plan.
    """
    for spec in specs:
        name = spec.scenario_name
        if name is None:
            continue
        try:
            configure(get_scenario(name), spec.to_config())
        except ConfigurationError as exc:
            print(str(exc), file=sys.stderr)
            return False
    return True


def _check_counts(args: argparse.Namespace) -> bool:
    """Validate count-type options; prints to stderr on error."""
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return False
    replicas = getattr(args, "replicas", 1)
    if replicas < 1:
        print(f"--replicas must be >= 1, got {replicas}", file=sys.stderr)
        return False
    shards = getattr(args, "shards", 1)
    shard_index = getattr(args, "shard_index", 0)
    if shards < 1:
        print(f"--shards must be >= 1, got {shards}", file=sys.stderr)
        return False
    if not 0 <= shard_index < shards:
        print(f"--shard-index must be in [0, {shards}), "
              f"got {shard_index}", file=sys.stderr)
        return False
    return True


def _cmd_run(args: argparse.Namespace) -> int:
    if not _check_counts(args) or not _check_scheduler(args):
        return 2
    experiment_ids = _resolve_experiments(args.experiment)
    if experiment_ids is None:
        return 2
    overrides = _parse_overrides(args.set or [])
    if overrides is None:
        return 2
    specs = [
        RunSpec(experiment_id=exp_id, quick=args.quick, seed=args.seed,
                scheduler=args.scheduler, overrides=overrides,
                measure_wallclock=args.wallclock).validate()
        for exp_id in experiment_ids
    ]
    if not _check_scenario_specs(specs):
        return 2
    # Stream reports in plan order as jobs settle: a full-size `run
    # all` prints each experiment as soon as it (and its predecessors)
    # finish, rather than staying silent until the slowest job ends.
    key_order = [spec.key() for spec in specs]
    settled: Dict[str, Any] = {}
    next_to_print = [0]

    def _print_ready(outcome) -> None:
        settled[outcome.spec.key()] = outcome
        while (next_to_print[0] < len(key_order)
               and key_order[next_to_print[0]] in settled):
            print(settled[key_order[next_to_print[0]]].report.render())
            print()
            next_to_print[0] += 1

    outcomes = _run_specs(args, specs, on_outcome=_print_ready)
    if outcomes is None:
        return 2
    return _finish(outcomes, args,
                   show_manifest=(len(specs) > 1 or args.jobs > 1
                                  or args.cache_dir is not None
                                  or args.server is not None))


def _cmd_sweep(args: argparse.Namespace) -> int:
    if not _check_counts(args) or not _check_scheduler(args):
        return 2
    experiment_ids = _resolve_experiments(args.experiment)
    if experiment_ids is None:
        return 2
    grid = _parse_grid(args.set or [])
    if grid is None:
        return 2
    specs = plan_runs(
        experiment_ids,
        quick=args.quick,
        scheduler=args.scheduler,
        base_seed=args.base_seed,
        replicas=args.replicas,
        grid=grid,
    )
    if args.shards > 1:
        specs = shard(specs, args.shards, args.shard_index)
    if not specs:
        print("empty plan (shard with no jobs?)", file=sys.stderr)
        return 0
    if not _check_scenario_specs(specs):
        return 2
    outcomes = _run_specs(args, specs)
    if outcomes is None:
        return 2
    merged = merge_outcomes(
        outcomes, title=f"sweep over {', '.join(experiment_ids)}")
    print(merged.render())
    print()
    return _finish(outcomes, args,
                   show_manifest=False)  # render() included it


def _cmd_scenario_list(_args: argparse.Namespace) -> int:
    _print_catalogue("scenarios", scenario_summaries())
    return 0


def _cmd_scenario_show(args: argparse.Namespace) -> int:
    from repro.experiments.base import ExperimentConfig

    overrides = _parse_overrides(args.set or [])
    if overrides is None:
        return 2
    try:
        scenario = configure(
            get_scenario(args.name),
            ExperimentConfig(quick=args.quick, seed=args.seed,
                             scheduler=args.scheduler,
                             overrides=overrides))
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(scenario.to_json(indent=1))
    return 0


def _cmd_scenario_run(args: argparse.Namespace) -> int:
    if not _check_counts(args) or not _check_scheduler(args):
        return 2
    overrides = _parse_overrides(args.set or [])
    if overrides is None:
        return 2
    try:
        specs = [
            RunSpec(experiment_id=f"{SCENARIO_PREFIX}{name}",
                    quick=args.quick, seed=args.seed,
                    scheduler=args.scheduler,
                    overrides=overrides).validate()
            for name in args.name
        ]
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if not _check_scenario_specs(specs):
        return 2
    outcomes = _run_specs(args, specs)
    if outcomes is None:
        return 2
    for outcome in outcomes:
        print(outcome.report.render())
        print()
    return _finish(outcomes, args,
                   show_manifest=(len(specs) > 1 or args.jobs > 1
                                  or args.cache_dir is not None
                                  or args.server is not None))


def _cmd_perf(args: argparse.Namespace) -> int:
    from repro.perf import (
        BenchRecord,
        diff_records,
        engine_speedups,
        iter_benches,
        latest_record,
        run_suite,
    )

    benches = list(iter_benches(quick=args.quick, pattern=args.filter))
    if args.list:
        width = max((len(bench.name) for bench in benches), default=0)
        for bench in benches:
            subset = "quick" if bench.quick else "full "
            print(f"  {bench.name:<{width}}  [{subset}] {bench.group}")
        return 0
    if not benches:
        print(f"no benches match filter {args.filter!r}", file=sys.stderr)
        return 2
    repeats = args.repeats if args.repeats is not None else (
        3 if args.quick else 5)
    min_time = args.min_time if args.min_time is not None else (
        0.05 if args.quick else 0.2)
    if repeats < 1 or min_time <= 0:
        print("--repeats must be >= 1 and --min-time positive",
              file=sys.stderr)
        return 2
    width = max(len(bench.name) for bench in benches)

    def _show(result) -> None:
        print(f"  {result.name:<{width}}  {result.ns_per_op:>14,.0f} ns/op"
              f"  ({result.ops_per_s:,.1f} op/s, "
              f"best of {result.repeats})")

    print(f"running {len(benches)} benches "
          f"({'quick' if args.quick else 'full'} mode, "
          f"min_time={min_time}s, repeats={repeats}):")
    results = run_suite(benches, min_time_s=min_time, repeats=repeats,
                        on_result=_show)
    record = BenchRecord.capture(results, quick=args.quick)
    out_path = pathlib.Path(args.json_out) if args.json_out \
        else pathlib.Path(record.default_filename())
    record.write(out_path)
    print(f"\nwrote {out_path} (revision {record.revision})")
    speedups = engine_speedups(record)
    if speedups:
        print("paired speedups (reference/vector, sequential/batch, "
              "reference/columnar):")
        for stem in sorted(speedups):
            print(f"  {stem}: {speedups[stem]:.1f}x")
    if args.baseline:
        baseline_path = pathlib.Path(args.baseline)
        if baseline_path.is_dir():
            found = latest_record(baseline_path)
            if found is None:
                print(f"--baseline {args.baseline!r}: no BENCH_*.json "
                      "records inside", file=sys.stderr)
                return 2
            baseline_path = found
        try:
            baseline = BenchRecord.load(baseline_path)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"--baseline {baseline_path}: {exc}", file=sys.stderr)
            return 2
        deltas = diff_records(baseline, record, threshold=args.threshold)
        print(f"vs baseline {baseline_path} "
              f"(revision {baseline.revision}, "
              f"threshold ±{args.threshold:.0%}):")
        for delta in deltas:
            print(delta.render())
        regressions = [d for d in deltas if d.status == "regression"]
        if regressions:
            print(f"{len(regressions)} advisory regression(s) beyond "
                  f"{args.threshold:.0%} — wall-clock noise is common on "
                  "shared runners; investigate before trusting.")
            if args.fail_on_regression:
                return 1
        else:
            print("no regressions beyond threshold.")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ReproDaemon
    from repro.service.protocol import parse_address

    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    try:
        parse_address(args.socket)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.lease_timeout <= 0:
        print(f"--lease-timeout must be > 0, got {args.lease_timeout}",
              file=sys.stderr)
        return 2
    ok, limits = _make_limits(args)
    if not ok:
        return 2
    if args.standby or args.follow:
        return _serve_standby(args, limits)
    try:
        daemon = ReproDaemon(
            args.socket,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            replica_batch=args.replica_batch,
            lease_timeout_s=args.lease_timeout,
            local_execution=not args.no_local,
            resume=args.resume,
            limits=limits,
            max_queue=args.max_queue,
            busy_retry_s=args.busy_retry,
            min_free_mb=args.min_free_mb,
            quiet=args.quiet,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return daemon.run()


def _serve_standby(args: argparse.Namespace, limits) -> int:
    """The ``repro serve --standby --follow ADDR`` path."""
    from repro.service import RetryPolicy
    from repro.service.protocol import parse_address
    from repro.service.standby import StandbyError, StandbyHub

    if not args.follow:
        print("--standby needs --follow ADDR (the primary to tail)",
              file=sys.stderr)
        return 2
    try:
        parse_address(args.follow)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        hub = StandbyHub(
            args.socket,
            args.follow,
            cache_dir=args.cache_dir,
            jobs=args.jobs,
            replica_batch=args.replica_batch,
            lease_timeout_s=args.lease_timeout,
            local_execution=not args.no_local,
            limits=limits,
            max_queue=args.max_queue,
            busy_retry_s=args.busy_retry,
            min_free_mb=args.min_free_mb,
            retry=RetryPolicy(max_attempts=max(0, args.retry_max),
                              base_delay_s=max(0.0, args.retry_base),
                              max_delay_s=2.0),
            quiet=args.quiet,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    def _stand_down(signum, frame):  # noqa: ARG001
        hub.stop()

    for signum in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(ValueError, OSError):
            signal.signal(signum, _stand_down)
    try:
        return hub.run()
    except StandbyError as exc:
        print(f"--standby: {exc}", file=sys.stderr)
        return 2


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.service import RetryPolicy
    from repro.service.protocol import ProtocolError, parse_address_list
    from repro.service.worker import ReproWorker, WorkerError

    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    try:
        parse_address_list(args.connect)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.heartbeat is not None and args.heartbeat <= 0:
        print(f"--heartbeat must be > 0 seconds, got {args.heartbeat}",
              file=sys.stderr)
        return 2
    ok, limits = _make_limits(args)
    if not ok:
        return 2
    worker = ReproWorker(
        args.connect,
        jobs=args.jobs,
        replica_batch=args.replica_batch,
        name=args.name,
        timeout=args.timeout,
        cache_dir=args.cache_dir or None,
        retry=RetryPolicy(max_attempts=max(0, args.retry_max),
                          base_delay_s=max(0.0, args.retry_base),
                          max_delay_s=5.0),
        limits=limits,
        heartbeat_s=args.heartbeat,
        quiet=args.quiet,
    )

    def _drain_on_sigterm(signum, frame):  # noqa: ARG001
        # stop() closes the socket (popping the serve loop out of its
        # blocking read and suppressing reconnects); the SystemExit
        # interrupts an in-process lease execution so the process is
        # gone within seconds, not at the end of a long batch.  The
        # daemon parks our leases for reconnect, then reassigns them
        # at the lease timeout.
        worker.stop()
        raise SystemExit(128 + signum)

    with contextlib.suppress(ValueError, OSError):  # non-main thread
        signal.signal(signal.SIGTERM, _drain_on_sigterm)
    try:
        return worker.run()
    except (WorkerError, ProtocolError, OSError) as exc:
        # Mirrors the client failure contract: an unreachable or
        # incompatible daemon — or one whose registration reply is
        # garbled (ProtocolError) — is one line on stderr and exit
        # code 2.
        print(f"--connect {args.connect}: {exc}", file=sys.stderr)
        return 2


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.service.chaos import ChaosConfig, ChaosProxy
    from repro.service.protocol import parse_address

    try:
        parse_address(args.upstream)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    for flag, p in (("--p-disconnect", args.p_disconnect),
                    ("--p-truncate", args.p_truncate),
                    ("--p-delay", args.p_delay)):
        if not 0.0 <= p <= 1.0:
            print(f"{flag} must be in [0, 1], got {p}",
                  file=sys.stderr)
            return 2
    try:
        proxy = ChaosProxy(
            args.upstream,
            listen=args.listen,
            seed=args.seed,
            config=ChaosConfig(
                p_disconnect=args.p_disconnect,
                p_truncate=args.p_truncate,
                p_delay=args.p_delay,
                delay_s=args.delay,
                min_frames=args.min_frames,
            ),
            quiet=args.quiet,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(ValueError, OSError):
            signal.signal(signum, lambda *_: stop.set())
    try:
        proxy.start()
    except OSError as exc:
        print(f"--listen {args.listen}: {exc}", file=sys.stderr)
        return 2
    print(f"chaos proxy on {proxy.bound_address} -> {args.upstream} "
          f"(seed={args.seed})", flush=True)
    # --duration: self-terminating runs for CI (no pid bookkeeping);
    # a signal still stops the proxy early either way.
    stop.wait(args.duration if args.duration else None)
    proxy.stop()
    counters = proxy.counters.snapshot()
    print(f"chaos proxy stopped: "
          f"{json.dumps(counters, sort_keys=True)}")
    if args.json_out:
        # Machine-readable fault tally for CI assertions ("did this
        # chaos run actually inject anything?").
        pathlib.Path(args.json_out).write_text(
            json.dumps({"seed": args.seed,
                        "upstream": args.upstream,
                        "counters": counters},
                       sort_keys=True, indent=1) + "\n",
            encoding="utf-8")
    return 0


def _cmd_supervise(args: argparse.Namespace) -> int:
    from repro.service.protocol import parse_address_list
    from repro.service.supervisor import Supervisor, SupervisorError

    try:
        candidates = parse_address_list(args.server)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    hub_argv = None
    if not args.attach:
        # Supervised hubs get --resume (they are expected to be
        # restarted) and --quiet off so crashes leave a trace.
        hub_argv = [sys.executable, "-m", "repro.cli", "serve",
                    "--socket", candidates[0],
                    "--jobs", str(args.hub_jobs)]
        if args.cache_dir:
            hub_argv += ["--cache-dir", args.cache_dir]

    def worker_argv(index: int) -> list:
        argv = [sys.executable, "-m", "repro.cli", "worker",
                "--connect", args.server,
                "--jobs", str(args.worker_jobs),
                "--name", f"sup-{os.getpid()}-{index}"]
        if args.worker_cache_dir:
            argv += ["--cache-dir",
                     f"{args.worker_cache_dir}-{index}"]
        return argv

    try:
        supervisor = Supervisor(
            hub_argv=hub_argv,
            worker_argv=worker_argv,
            probe_address=args.server,
            min_workers=args.min_workers,
            max_workers=args.max_workers,
            scale_up_depth=args.scale_up_depth,
            interval_s=args.interval,
            restart_budget=args.restart_budget,
            status_path=args.status_json or None,
            quiet=args.quiet,
        )
    except SupervisorError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    def _wind_down(signum, frame):  # noqa: ARG001
        supervisor.request_stop()

    for signum in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(ValueError, OSError):
            signal.signal(signum, _wind_down)
    return supervisor.run()


def _cache_for_args(args: argparse.Namespace):
    """``(ok, cache)`` for the ``repro cache`` subcommands."""
    path = pathlib.Path(args.cache_dir)
    if path.exists() and not path.is_dir():
        print(f"--cache-dir {args.cache_dir!r} exists and is not a "
              "directory", file=sys.stderr)
        return False, None
    budget_mb = getattr(args, "budget_mb", None)
    budget = None if budget_mb is None else budget_mb * 1024 * 1024
    try:
        return True, ResultCache(path, budget_bytes=budget)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return False, None


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    from repro.runner.cache import free_disk_bytes

    ok, cache = _cache_for_args(args)
    if not ok:
        return 2
    entries = cache.index()
    total = sum(entry.size_bytes for entry in entries)
    payload = {
        "root": str(cache.root),
        "entries": len(entries),
        "total_bytes": total,
        "budget_bytes": cache.budget_bytes,
        "over_budget_bytes": (max(0, total - cache.budget_bytes)
                              if cache.budget_bytes is not None
                              else 0),
        "free_disk_bytes": free_disk_bytes(cache.root),
        "coldest_mtime": entries[0].mtime if entries else None,
        "warmest_mtime": entries[-1].mtime if entries else None,
    }
    if args.json:
        print(json.dumps(payload, sort_keys=True, indent=1))
        return 0
    for name in ("root", "entries", "total_bytes", "budget_bytes",
                 "over_budget_bytes", "free_disk_bytes"):
        print(f"  {name:<18} {payload[name]}")
    return 0


def _cmd_cache_verify(args: argparse.Namespace) -> int:
    ok, cache = _cache_for_args(args)
    if not ok:
        return 2
    valid, evicted = cache.verify()
    if args.json:
        print(json.dumps({"valid": valid, "evicted": evicted},
                         sort_keys=True))
    else:
        print(f"verified {valid + evicted} entr(ies): {valid} valid, "
              f"{evicted} corrupt (evicted)")
    return 1 if evicted else 0


def _cmd_cache_gc(args: argparse.Namespace) -> int:
    ok, cache = _cache_for_args(args)
    if not ok:
        return 2
    target_mb = getattr(args, "target_mb", None)
    target = None if target_mb is None else target_mb * 1024 * 1024
    if target is None and cache.budget_bytes is None:
        print("cache gc needs a target: pass --target-mb or "
              "--budget-mb", file=sys.stderr)
        return 2
    try:
        evicted, freed = cache.gc(target_bytes=target)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    remaining = cache.total_bytes()
    if args.json:
        print(json.dumps({"evicted": evicted, "freed_bytes": freed,
                          "remaining_bytes": remaining},
                         sort_keys=True))
    else:
        print(f"evicted {evicted} cold entr(ies), freed {freed} bytes "
              f"({remaining} bytes remain)")
    return 0


def _with_service_client(args: argparse.Namespace, action):
    """Run ``action(client)`` against ``--server``; exit-code result.

    ``--server`` may be a comma-separated failover list; candidates
    are tried in order and the first reachable daemon answers.
    """
    from repro.service import ServiceClient, ServiceError
    from repro.service.protocol import parse_address_list

    try:
        candidates = parse_address_list(args.server)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    last_error: Exception = OSError("no address candidates")
    for address in candidates:
        try:
            with ServiceClient(address,
                               timeout=args.timeout) as client:
                return action(client)
        except (ServiceError, OSError) as exc:
            last_error = exc
    print(f"--server {args.server}: {last_error}", file=sys.stderr)
    return 2


_WORKER_COLUMNS = ("id", "name", "status", "address", "jobs", "leased",
                   "completed", "failed", "heartbeat_age_s")


def _print_worker_rows(workers) -> None:
    widths = {col: len(col) for col in _WORKER_COLUMNS}
    rows = []
    for worker in workers:
        row = {col: str(worker.get(col, "")) for col in _WORKER_COLUMNS}
        for col, text in row.items():
            widths[col] = max(widths[col], len(text))
        rows.append(row)
    header = "  ".join(col.ljust(widths[col])
                       for col in _WORKER_COLUMNS)
    print(f"  {header}")
    for row in rows:
        line = "  ".join(row[col].ljust(widths[col])
                         for col in _WORKER_COLUMNS)
        print(f"  {line}")


def _cmd_service_stats(args: argparse.Namespace) -> int:
    def action(client) -> int:
        stats = client.stats()
        if args.json:
            print(json.dumps(stats, sort_keys=True, indent=1))
            return 0
        workers = stats.get("workers") or []
        for name in sorted(stats):
            if name not in ("type", "workers"):
                print(f"  {name:<18} {stats[name]}")
        print(f"  {'workers':<18} {len(workers)}")
        if workers:
            _print_worker_rows(workers)
        return 0

    return _with_service_client(args, action)


def _cmd_service_workers(args: argparse.Namespace) -> int:
    def action(client) -> int:
        workers = client.stats().get("workers") or []
        if args.json:
            print(json.dumps(workers, sort_keys=True, indent=1))
            return 0
        if not workers:
            print("no workers registered")
            return 0
        _print_worker_rows(workers)
        return 0

    return _with_service_client(args, action)


def _cmd_service_shutdown(args: argparse.Namespace) -> int:
    def action(client) -> int:
        client.shutdown(wait_bye=True)
        print("daemon drained and stopped")
        return 0

    return _with_service_client(args, action)


def _add_common_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--quick", action="store_true",
                        help="reduced problem sizes (CI/smoke)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default 1; results are "
                             "bit-identical at any value)")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="content-addressed report cache; reruns of "
                             "an unchanged spec are served from disk")
    parser.add_argument("--replica-batch", action="store_true",
                        help="fuse replica jobs that differ only in "
                             "seed through the vectorised replica-batch "
                             "kernel (byte-identical reports, one fused "
                             "execution per sweep point)")
    parser.add_argument("--scheduler", metavar="NAME",
                        help="override the framework scheduler where "
                             "the experiment supports one")
    parser.add_argument("--server", metavar="ADDR", default=None,
                        const=DEFAULT_SERVICE_SOCKET, nargs="?",
                        help="route jobs through a `repro serve` "
                             "daemon at ADDR (socket path or "
                             "host:port; bare --server uses "
                             f"{DEFAULT_SERVICE_SOCKET!r}); a "
                             "comma-separated list (primary,standby) "
                             "fails over between hubs on reconnect; "
                             "reports are byte-identical to local "
                             "execution")
    parser.add_argument("--retry-max", type=int, default=5, metavar="N",
                        help="with --server: reconnect attempts after "
                             "a lost connection, exponential backoff "
                             "with jitter (default 5; exit 2 only "
                             "after all are exhausted)")
    parser.add_argument("--retry-base", type=float, default=0.2,
                        metavar="S",
                        help="with --server: base backoff delay; "
                             "attempt i waits ~min(10, S*2^i) seconds "
                             "(default 0.2)")
    parser.add_argument("--json-out", metavar="PATH",
                        help="write manifest + all reports as JSON")
    _add_governance_options(parser)


def _add_governance_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--job-timeout", type=float, default=None,
                        metavar="S", dest="job_timeout",
                        help="per-job wall-clock deadline in seconds; "
                             "a job past it becomes a typed TIMEOUT "
                             "FAIL row instead of hanging the sweep")
    parser.add_argument("--job-memory-mb", type=int, default=None,
                        metavar="MB", dest="job_memory_mb",
                        help="per-job address-space ceiling; a job "
                             "allocating past it becomes a typed OOM "
                             "FAIL row instead of taking the host down")


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hybrid EPS/OCS scheduling framework — paper "
                    "experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiments, schedulers, presets"
                   ).set_defaults(func=_cmd_list)

    run = sub.add_parser(
        "run", help="run experiments (e1..e8 or all), optionally in "
                    "parallel and against a cache")
    run.add_argument("experiment", nargs="+",
                     help="experiment ids, or 'all'")
    _add_common_run_options(run)
    run.add_argument("--seed", type=int,
                     help="base seed (default: each experiment's "
                          "historical seeds)")
    run.add_argument("--set", action="append", metavar="KEY=VALUE",
                     help="experiment config override (repeatable)")
    run.add_argument("--wallclock", action="store_true",
                     help="include non-deterministic wall-clock series "
                          "(e7); such reports are not reproducible")
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser(
        "sweep", help="expand a parameter sweep into independent jobs "
                      "and run them")
    sweep.add_argument("experiment", nargs="+",
                       help="experiment ids, or 'all'")
    _add_common_run_options(sweep)
    sweep.add_argument("--replicas", type=int, default=1, metavar="N",
                       help="seed-derived repetitions per grid point")
    sweep.add_argument("--base-seed", type=int, metavar="S",
                       help="base for per-replica seed derivation")
    sweep.add_argument("--set", action="append", metavar="KEY=V1,V2",
                       help="grid axis: sweep KEY over the listed "
                            "values (repeatable)")
    sweep.add_argument("--shards", type=int, default=1, metavar="N",
                       help="split the plan into N deterministic shards")
    sweep.add_argument("--shard-index", type=int, default=0, metavar="I",
                       help="which shard to run (0-based)")
    sweep.set_defaults(func=_cmd_sweep)

    scenario = sub.add_parser(
        "scenario", help="declarative workload scenarios: list the "
                         "library, inspect a spec, run by name")
    scenario_sub = scenario.add_subparsers(dest="scenario_command",
                                           required=True)
    scenario_sub.add_parser(
        "list", help="named scenarios with one-line descriptions"
    ).set_defaults(func=_cmd_scenario_list)

    show = scenario_sub.add_parser(
        "show", help="print one scenario's canonical JSON (after "
                     "--set/--quick derivations)")
    show.add_argument("name", help=f"scenario name; one of: "
                                   f"{', '.join(available_scenarios())}")
    show.add_argument("--quick", action="store_true",
                      help="show the quickened (smoke-size) rendition")
    show.add_argument("--seed", type=int,
                      help="replace the scenario seed")
    show.add_argument("--scheduler", metavar="NAME",
                      help="swap the scheduler axis")
    show.add_argument("--set", action="append", metavar="PATH=VALUE",
                      help="dotted-path scenario override, e.g. "
                           "traffic.0.load=0.8 (repeatable)")
    show.set_defaults(func=_cmd_scenario_show)

    scenario_run = scenario_sub.add_parser(
        "run", help="run scenarios by name through the job runner "
                    "(parallel, cached, deterministic)")
    scenario_run.add_argument("name", nargs="+",
                              help="scenario names (see 'scenario "
                                   "list')")
    _add_common_run_options(scenario_run)
    scenario_run.add_argument("--seed", type=int,
                              help="replace the scenario seed")
    scenario_run.add_argument("--set", action="append",
                              metavar="PATH=VALUE",
                              help="dotted-path scenario override, "
                                   "e.g. n_ports=16 or traffic.0.load="
                                   "0.8 (repeatable)")
    scenario_run.set_defaults(func=_cmd_scenario_run)

    serve = sub.add_parser(
        "serve", help="run the always-on sweep daemon: owns the shared "
                      "result cache and warm worker pool, accepts jobs "
                      "over a local socket with cross-client dedup")
    serve.add_argument("--socket", metavar="ADDR",
                       default=DEFAULT_SERVICE_SOCKET,
                       help="listen address: unix-socket path or "
                            "host:port (default "
                            f"{DEFAULT_SERVICE_SOCKET!r})")
    serve.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="warm worker processes serving the job "
                            "queue (default 1)")
    serve.add_argument("--cache-dir", metavar="DIR",
                       default=".repro-cache",
                       help="shared content-addressed report cache "
                            "(default .repro-cache; '' disables)")
    serve.add_argument("--replica-batch", action="store_true",
                       help="fuse seed-only replica groups through the "
                            "vectorised replica-batch kernel")
    serve.add_argument("--lease-timeout", type=float, default=30.0,
                       metavar="S",
                       help="expel a remote worker whose heartbeats "
                            "stop for S seconds and reassign its "
                            "leased jobs (default 30)")
    serve.add_argument("--no-local", action="store_true",
                       help="dispatch only to registered remote "
                            "workers; the daemon's own pool runs "
                            "nothing (jobs queue until a worker "
                            "connects)")
    serve.add_argument("--resume", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="replay the write-ahead journal under the "
                            "cache dir on startup, requeueing jobs a "
                            "previous daemon accepted but never "
                            "settled (default on; --no-resume starts "
                            "with a clean journal)")
    serve.add_argument("--max-queue", type=int, default=4096,
                       metavar="N",
                       help="admission-control watermark: refuse new "
                            "submissions (a busy frame with a retry "
                            "hint) once this many jobs are queued "
                            "(default 4096)")
    serve.add_argument("--busy-retry", type=float, default=1.0,
                       metavar="S",
                       help="retry_after_s hint sent with busy "
                            "refusals (default 1.0)")
    serve.add_argument("--min-free-mb", type=int, default=64,
                       metavar="MB",
                       help="refuse new work when the cache volume "
                            "has less free space than this — the "
                            "journal must never hit a full disk "
                            "(default 64)")
    serve.add_argument("--standby", action="store_true",
                       help="run as a warm spare: follow the primary "
                            "named by --follow, mirror its journal, "
                            "and promote to a serving hub (on "
                            "--socket) if the primary stays gone "
                            "through the re-dial policy")
    serve.add_argument("--follow", metavar="ADDR", default=None,
                       help="primary daemon to tail in --standby "
                            "mode; the standby's --cache-dir must be "
                            "its own (never the primary's)")
    serve.add_argument("--retry-max", type=int, default=3, metavar="N",
                       help="standby mode: re-dial attempts after "
                            "losing the primary before promoting "
                            "(default 3)")
    serve.add_argument("--retry-base", type=float, default=0.2,
                       metavar="S",
                       help="standby mode: base delay for re-dial "
                            "backoff (default 0.2; doubles per "
                            "attempt, jittered, capped at 2s)")
    _add_governance_options(serve)
    serve.add_argument("--quiet", action="store_true",
                       help="suppress the per-event log lines on "
                            "stderr")
    serve.set_defaults(func=_cmd_serve)

    worker = sub.add_parser(
        "worker", help="run a remote worker node: register into a "
                       "`repro serve` daemon's pool and execute the "
                       "sweep jobs it leases out")
    worker.add_argument("--connect", metavar="ADDR",
                        default=DEFAULT_SERVICE_SOCKET,
                        help="daemon address: unix-socket path or "
                             "host:port, optionally a comma-separated "
                             "failover list (primary,standby) rotated "
                             "through on reconnect (default "
                             f"{DEFAULT_SERVICE_SOCKET!r})")
    worker.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="parallel worker processes on this node "
                             "(default 1); the daemon leases batches "
                             "sized to this width")
    worker.add_argument("--replica-batch", action="store_true",
                        help="fuse seed-only replica groups in leased "
                             "batches through the vectorised "
                             "replica-batch kernel")
    worker.add_argument("--name", metavar="NAME", default=None,
                        help="worker name shown in `repro service "
                             "workers` (default host-pid)")
    worker.add_argument("--timeout", type=float, default=30.0,
                        metavar="S",
                        help="dial/handshake timeout in seconds "
                             "(default 30)")
    worker.add_argument("--cache-dir", metavar="DIR", default="",
                        help="local content-addressed report cache on "
                             "this node (default: none); the hub cache "
                             "is consulted over the wire regardless")
    worker.add_argument("--retry-max", type=int, default=8, metavar="N",
                        help="reconnect attempts after losing the "
                             "daemon before giving up (default 8)")
    worker.add_argument("--retry-base", type=float, default=0.25,
                        metavar="S",
                        help="base delay for reconnect backoff "
                             "(default 0.25; doubles per attempt, "
                             "jittered, capped at 5s)")
    worker.add_argument("--heartbeat", type=float, default=None,
                        metavar="S",
                        help="liveness heartbeat interval override; "
                             "validated at registration (must be at "
                             "most half the daemon's lease timeout); "
                             "default: the daemon picks a third of "
                             "its lease timeout")
    _add_governance_options(worker)
    worker.add_argument("--quiet", action="store_true",
                        help="suppress the per-event log lines on "
                             "stderr")
    worker.set_defaults(func=_cmd_worker)

    chaos = sub.add_parser(
        "chaos", help="run a fault-injecting proxy between service "
                      "peers and a `repro serve` daemon: drops, "
                      "truncates and delays protocol frames on a "
                      "seeded schedule")
    chaos.add_argument("--listen", metavar="HOST:PORT",
                       default="127.0.0.1:0",
                       help="proxy listen address; port 0 picks a "
                            "free port (default 127.0.0.1:0)")
    chaos.add_argument("--upstream", metavar="ADDR", required=True,
                       help="daemon address to forward to: "
                            "unix-socket path or host:port")
    chaos.add_argument("--seed", type=int, default=0, metavar="N",
                       help="fault schedule seed; the same seed "
                            "replays the same schedule (default 0)")
    chaos.add_argument("--p-disconnect", type=float, default=0.0,
                       metavar="P",
                       help="per-frame probability of swallowing the "
                            "frame and killing the connection")
    chaos.add_argument("--p-truncate", type=float, default=0.0,
                       metavar="P",
                       help="per-frame probability of forwarding half "
                            "a frame, then killing the connection")
    chaos.add_argument("--p-delay", type=float, default=0.0,
                       metavar="P",
                       help="per-frame probability of delaying the "
                            "frame by up to --delay seconds")
    chaos.add_argument("--delay", type=float, default=0.05,
                       metavar="S",
                       help="max injected delay per delayed frame "
                            "(default 0.05)")
    chaos.add_argument("--min-frames", type=int, default=0,
                       metavar="N",
                       help="per-direction frames forwarded untouched "
                            "before faults start (2 keeps handshakes "
                            "clean; default 0)")
    chaos.add_argument("--duration", type=float, default=None,
                       metavar="S",
                       help="stop the proxy after S seconds instead "
                            "of waiting for a signal (CI drills need "
                            "no pid bookkeeping)")
    chaos.add_argument("--json-out", metavar="PATH",
                       help="on shutdown, write the fault counters "
                            "(drops, truncations, delays) as JSON")
    chaos.add_argument("--quiet", action="store_true",
                       help="suppress the per-connection log lines on "
                            "stderr")
    chaos.set_defaults(func=_cmd_chaos)

    supervise = sub.add_parser(
        "supervise", help="self-healing fleet supervision: launch and "
                          "health-probe a hub plus a worker fleet, "
                          "restart crashed or hung components under a "
                          "backoff budget, autoscale workers against "
                          "queue depth")
    supervise.add_argument("--server", metavar="ADDR",
                           default=DEFAULT_SERVICE_SOCKET,
                           help="hub address to launch and/or probe; "
                                "a comma-separated failover list "
                                "probes whichever hub answers "
                                f"(default {DEFAULT_SERVICE_SOCKET!r})")
    supervise.add_argument("--attach", action="store_true",
                           help="do not launch a hub; supervise only "
                                "the worker fleet against an "
                                "externally managed hub (or a "
                                "primary/standby pair)")
    supervise.add_argument("--hub-jobs", type=int, default=1,
                           metavar="N",
                           help="--jobs for the launched hub "
                                "(default 1)")
    supervise.add_argument("--cache-dir", metavar="DIR",
                           default=".repro-cache",
                           help="--cache-dir for the launched hub "
                                "(default .repro-cache)")
    supervise.add_argument("--worker-jobs", type=int, default=1,
                           metavar="N",
                           help="--jobs for each supervised worker "
                                "(default 1)")
    supervise.add_argument("--worker-cache-dir", metavar="DIR",
                           default="",
                           help="per-worker local cache prefix; "
                                "worker i gets DIR-i (default: no "
                                "local worker caches)")
    supervise.add_argument("--min-workers", type=int, default=1,
                           metavar="N",
                           help="never run fewer live workers "
                                "(default 1)")
    supervise.add_argument("--max-workers", type=int, default=4,
                           metavar="N",
                           help="never run more live workers "
                                "(default 4)")
    supervise.add_argument("--scale-up-depth", type=int, default=8,
                           metavar="N",
                           help="add one worker per tick while the "
                                "hub's queue depth is at least this "
                                "(default 8)")
    supervise.add_argument("--interval", type=float, default=2.0,
                           metavar="S",
                           help="control-loop tick interval "
                                "(default 2.0)")
    supervise.add_argument("--restart-budget", type=int,
                           default=5, metavar="N",
                           help="consecutive fast failures before a "
                                "component is quarantined instead of "
                                "restarted (default 5)")
    supervise.add_argument("--status-json", metavar="PATH", default="",
                           help="atomically rewrite PATH each tick "
                                "with machine-readable fleet state "
                                "(pids, restart counters, "
                                "quarantines)")
    supervise.add_argument("--quiet", action="store_true",
                           help="suppress the per-event log lines on "
                                "stderr")
    supervise.set_defaults(func=_cmd_supervise)

    cache_cmd = sub.add_parser(
        "cache", help="inspect and govern a result-cache directory: "
                      "size stats, integrity fsck, LRU garbage "
                      "collection")
    cache_sub = cache_cmd.add_subparsers(dest="cache_command",
                                         required=True)
    for name, func, doc in (
            ("stats", _cmd_cache_stats,
             "entry count, footprint, budget headroom and free disk"),
            ("verify", _cmd_cache_verify,
             "re-check every entry's payload digest and spec key, "
             "evicting corrupt ones (exit 1 if any were)"),
            ("gc", _cmd_cache_gc,
             "evict coldest entries until the cache fits the target "
             "size")):
        sub_cmd = cache_sub.add_parser(name, help=doc)
        sub_cmd.add_argument("--cache-dir", metavar="DIR",
                             default=".repro-cache",
                             help="cache root (default .repro-cache)")
        sub_cmd.add_argument("--budget-mb", type=int, default=None,
                             metavar="MB",
                             help="size budget; stats reports overage "
                                  "against it and gc uses it as the "
                                  "default target")
        sub_cmd.add_argument("--json", action="store_true",
                             help="machine-readable output")
        if name == "gc":
            sub_cmd.add_argument("--target-mb", type=int, default=None,
                                 metavar="MB",
                                 help="gc down to this size "
                                      "(defaults to --budget-mb)")
        sub_cmd.set_defaults(func=func)

    service = sub.add_parser(
        "service", help="talk to a running `repro serve` daemon")
    service_sub = service.add_subparsers(dest="service_command",
                                         required=True)
    for name, func, doc in (
            ("stats", _cmd_service_stats,
             "print the daemon's live counters and worker fleet"),
            ("workers", _cmd_service_workers,
             "list the registered remote workers"),
            ("shutdown", _cmd_service_shutdown,
             "gracefully drain and stop the daemon")):
        sub_cmd = service_sub.add_parser(name, help=doc)
        sub_cmd.add_argument("--server", metavar="ADDR",
                             default=DEFAULT_SERVICE_SOCKET,
                             help="daemon address (default "
                                  f"{DEFAULT_SERVICE_SOCKET!r})")
        sub_cmd.add_argument("--timeout", type=float, default=60.0,
                             metavar="S",
                             help="socket timeout in seconds")
        if name in ("stats", "workers"):
            sub_cmd.add_argument("--json", action="store_true",
                                 help="machine-readable output")
        sub_cmd.set_defaults(func=func)

    perf = sub.add_parser(
        "perf", help="run the microbench suite, emit a BENCH_<rev>.json "
                     "trajectory record, optionally diff a baseline")
    perf.add_argument("--quick", action="store_true",
                      help="quick bench subset with lighter timing "
                           "(CI perf-smoke)")
    perf.add_argument("--list", action="store_true",
                      help="list matching benches instead of running")
    perf.add_argument("--filter", metavar="SUBSTR",
                      help="only benches whose name contains SUBSTR")
    perf.add_argument("--json-out", metavar="PATH",
                      help="record path (default ./BENCH_<rev>.json)")
    perf.add_argument("--baseline", metavar="PATH",
                      help="BENCH_*.json file — or a directory, e.g. "
                           "benchmarks/baselines, using its newest "
                           "record — to diff against (advisory)")
    perf.add_argument("--threshold", type=float, default=0.25,
                      metavar="FRAC",
                      help="relative drift that counts as a regression/"
                           "improvement (default 0.25)")
    perf.add_argument("--repeats", type=int, default=None, metavar="N",
                      help="timing repeats per bench (default 5, or 3 "
                           "with --quick)")
    perf.add_argument("--min-time", type=float, default=None, metavar="S",
                      help="minimum seconds per repeat (default 0.2, or "
                           "0.05 with --quick)")
    perf.add_argument("--fail-on-regression", action="store_true",
                      help="exit 1 when the advisory diff finds a "
                           "regression (local gating; CI stays advisory)")
    perf.set_defaults(func=_cmd_perf)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
