"""Parallel Iterative Matching (PIM).

Anderson et al.'s randomised three-phase matcher (request / grant /
accept), the ancestor of iSLIP and the canonical "easy in hardware"
crossbar scheduler:

1. **Request** — every unmatched input sends a request to every output
   it has demand for.
2. **Grant** — every unmatched output picks one requesting input
   uniformly at random.
3. **Accept** — every input that received grants accepts one uniformly
   at random.

Repeat for ``iterations`` rounds.  One round converges to ~63 % matched
under full uniform load (the classic 1 − 1/e result, which our E5 bench
confirms); O(log n) rounds approach a maximal matching.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

import numpy as np

from repro.schedulers.base import Scheduler, ScheduleResult
from repro.schedulers.matching import Matching


class PimScheduler(Scheduler):
    """Randomised parallel iterative matching.

    Parameters
    ----------
    n_ports:
        Port count.
    iterations:
        Matching rounds per schedule (k in PIM-k).
    rng:
        Randomness source; pass a seeded ``random.Random`` for
        reproducibility (the framework provides a named stream).
    """

    name = "pim"

    def __init__(self, n_ports: int, iterations: int = 1,
                 rng: Optional[random.Random] = None) -> None:
        super().__init__(n_ports)
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        self.iterations = iterations
        self.rng = rng or random.Random(0)

    def compute(self, demand: np.ndarray) -> ScheduleResult:
        return self.compute_trusted(self._check_demand(demand))

    def compute_trusted(self, demand: np.ndarray) -> ScheduleResult:
        """Vectorised request phase; see the base-class contract.

        The O(n²) Python candidate scan per round becomes one masked
        numpy request matrix plus a per-column ``nonzero``.  The grant
        and accept *draws* stay in ``random.Random``, in the exact
        column/insertion order of the original loops — ``randrange(k)``
        consumes the same underlying ``_randbelow(k)`` stream as
        ``choice`` on a k-element list — so results are bit-identical
        to the scalar original
        (``repro.schedulers.reference.ReferencePimScheduler``).
        """
        n = self.n_ports
        pos = demand > 0
        randrange = self.rng.randrange
        out_of_arr = np.full(n, -1, dtype=np.int64)
        in_unmatched = np.ones(n, dtype=bool)
        out_unmatched = np.ones(n, dtype=bool)
        rounds_used = 0
        for _round in range(self.iterations):
            rounds_used += 1
            progress = False
            # Phase 1: requests from unmatched inputs to unmatched
            # outputs, as one boolean matrix.
            req = pos & in_unmatched[:, None] & out_unmatched[None, :]
            # Phase 2: each requested output grants one requester at
            # random (column order preserves the RNG stream).
            grants: Dict[int, List[int]] = {}
            has_requests = np.nonzero(req.any(axis=0))[0]
            for out in has_requests.tolist():
                requesters = np.nonzero(req[:, out])[0]
                chosen = int(requesters[randrange(requesters.size)])
                grants.setdefault(chosen, []).append(out)
            # Phase 3: each input accepts one grant at random.
            for inp, granted_outputs in grants.items():
                accepted = granted_outputs[randrange(
                    len(granted_outputs))]
                out_of_arr[inp] = accepted
                in_unmatched[inp] = False
                out_unmatched[accepted] = False
                progress = True
            if not progress:
                break
        self.last_stats = {"iterations": rounds_used, "matchings": 1}
        return ScheduleResult(
            matchings=[(Matching.from_output_array(out_of_arr), 0)])


__all__ = ["PimScheduler"]
