"""Tests for the scheduler registry."""

import pytest

from repro.schedulers.base import Scheduler, ScheduleResult
from repro.schedulers.matching import Matching
from repro.schedulers.registry import (
    available_schedulers,
    create_scheduler,
    register_scheduler,
    unregister_scheduler,
)
from repro.sim.errors import ConfigurationError


class _Custom(Scheduler):
    name = "custom-test"

    def compute(self, demand):
        self._check_demand(demand)
        self.last_stats = {"iterations": 1, "matchings": 1}
        return ScheduleResult(matchings=[(Matching.empty(self.n_ports), 0)])


class TestRegistry:
    def test_builtins_present(self):
        names = available_schedulers()
        for expected in ("tdma", "pim", "islip", "mwm", "greedy-mwm",
                         "bvn", "solstice", "hotspot"):
            assert expected in names

    def test_create_by_name(self):
        scheduler = create_scheduler("islip", n_ports=8, iterations=2)
        assert scheduler.n_ports == 8
        assert scheduler.iterations == 2

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(ConfigurationError, match="tdma"):
            create_scheduler("no-such", n_ports=4)

    def test_register_and_create_custom(self):
        register_scheduler("custom-test",
                           lambda n_ports, **kw: _Custom(n_ports))
        try:
            scheduler = create_scheduler("custom-test", n_ports=4)
            assert isinstance(scheduler, _Custom)
        finally:
            unregister_scheduler("custom-test")

    def test_decorator_form(self):
        @register_scheduler("custom-decorated")
        def _factory(n_ports, **kwargs):
            return _Custom(n_ports)

        try:
            assert "custom-decorated" in available_schedulers()
        finally:
            unregister_scheduler("custom-decorated")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_scheduler("tdma", lambda n_ports, **kw: None)

    def test_unregister_returns_true_on_removal(self):
        register_scheduler("custom-ephemeral",
                           lambda n_ports, **kw: _Custom(n_ports))
        assert unregister_scheduler("custom-ephemeral") is True
        assert "custom-ephemeral" not in available_schedulers()

    def test_unregister_unknown_returns_false(self):
        # Unknown names must not raise (idempotent cleanup), but they
        # must be reported so a misspelled cleanup can't pass silently.
        assert unregister_scheduler("never-registered") is False

    def test_scheduler_minimum_ports(self):
        from repro.sim.errors import SchedulingError
        with pytest.raises(SchedulingError):
            _Custom(1)
