"""Wavefront Arbiter (WFA) — the canonical combinational crossbar matcher.

The wavefront arbiter (Tamir & Chi, 1993) is what an FPGA engineer
reaches for when iSLIP's pointer logic is still too much: a pure
combinational array.  Cells are visited along anti-diagonals
("wavefronts"); a cell (i, j) grants itself when it has a request and
neither row i nor column j has been claimed by an earlier wavefront.
All cells on one wavefront are independent, so one wavefront evaluates
per gate delay — the whole match settles in O(n) gate delays with *no*
clocked iterations at all.

Fairness comes from rotating which wrapped diagonal goes first
(:attr:`WfaScheduler._priority`), the standard "wrapped WFA" (WWFA)
construction; without rotation the top-left corner starves the rest.

The result is a **maximal** matching (no augmenting paths are sought),
like PIM/iSLIP, but fully deterministic and state-light — one modulo
counter.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.schedulers.base import Scheduler, ScheduleResult
from repro.schedulers.matching import Matching


class WfaScheduler(Scheduler):
    """Wrapped wavefront arbiter with a rotating priority diagonal."""

    name = "wfa"

    def __init__(self, n_ports: int) -> None:
        super().__init__(n_ports)
        self._priority = 0

    def compute(self, demand: np.ndarray) -> ScheduleResult:
        demand = self._check_demand(demand)
        n = self.n_ports
        requests = demand > 0
        row_free = [True] * n
        col_free = [True] * n
        out_of: List[Optional[int]] = [None] * n
        # Wrapped diagonals: wavefront w visits cells (i, j) with
        # (i + j) mod n == (priority + w) mod n.  Each wrapped diagonal
        # touches every row and column exactly once, so cells within a
        # wavefront never conflict — exactly the hardware's parallelism.
        for wave in range(n):
            diagonal = (self._priority + wave) % n
            for i in range(n):
                j = (diagonal - i) % n
                if requests[i, j] and row_free[i] and col_free[j]:
                    out_of[i] = j
                    row_free[i] = False
                    col_free[j] = False
        self._priority = (self._priority + 1) % n
        self.last_stats = {"iterations": n, "matchings": 1}
        return ScheduleResult(matchings=[(Matching(out_of), 0)])


__all__ = ["WfaScheduler"]
