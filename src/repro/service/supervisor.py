"""Self-healing fleet supervision: ``repro supervise``.

The journal (PR 8) made the hub's *state* survive a crash, and the
standby hub (:mod:`repro.service.standby`) gives that state somewhere
to fail over to — but something still has to notice a dead process
and start a new one.  The :class:`Supervisor` is that something: a
control loop that launches a hub and a worker fleet as child
processes, health-probes the hub over the service protocol
(``service stats``), and applies three policies every tick:

**Restart with a budget.**  A crashed or hung component is restarted
under :class:`~repro.service.client.RetryPolicy` backoff.  Restarts
are only *forgiven* when the component stayed up past
``healthy_after_s``; a component that keeps dying young burns through
its ``restart_budget`` and is **quarantined** — the supervisor stops
feeding it restarts and says so, exactly mirroring the daemon's
poison-spec logic (fail the same way twice and you are out).  A
supervisor that flaps a broken binary forever is worse than no
supervisor: it turns one failure into an infinite log of failures.

**Hung-hub detection.**  A hub process can be alive but wedged (stuck
event loop, blocked disk).  ``probe_failures_before_kill`` consecutive
failed stats probes against a process that *is* running — and has been
up long enough to rule out a slow boot — earns it a SIGKILL, which
converts "hung" into "crashed" and lets the restart policy take over.
The journal makes this safe: whatever the hub was holding replays.

**Watermark autoscaling.**  Queue depth from the stats probe drives
the fleet size between ``min_workers`` and ``max_workers``: depth at
or above ``scale_up_depth`` adds one worker per tick (gentle on
purpose — a worker warms its pool on start), and a queue that stays
empty with idle workers retires the newest one per
``scale_idle_ticks`` quiet ticks.  Retirement is SIGTERM, which the
worker maps to a drained exit, not a death.

Everything the loop consumes is injectable — ``spawn``, ``probe``,
``clock``/``sleep`` — so tests step :meth:`tick` deterministically
with fake processes and a fake clock; no test ever sleeps.  The CLI
wires in real subprocesses, a real stats probe, and ``time``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.service.client import RetryPolicy, ServiceClient
from repro.service.protocol import parse_address_list

#: A component this many restarts deep is quarantined, not restarted.
DEFAULT_RESTART_BUDGET = 5

#: Uptime (seconds) after which a component counts as healthy and its
#: fast-failure streak resets.
DEFAULT_HEALTHY_AFTER_S = 5.0

#: Consecutive failed stats probes before a *running* hub is presumed
#: hung and killed so the restart policy can take over.
DEFAULT_PROBE_FAILURES_BEFORE_KILL = 3


class SupervisorError(RuntimeError):
    """Configuration the supervisor cannot act on; the CLI reports
    one line and exits 2."""


@dataclass
class Component:
    """One supervised child process and its restart ledger."""

    name: str
    argv: List[str]
    #: ``"hub"`` components are stats-probed; ``"worker"`` components
    #: are only liveness-checked (the hub's lease reaper already
    #: detects a silent worker).
    role: str = "worker"
    process: Optional[Any] = None
    started_at: float = 0.0
    #: Restarts consumed (lifetime, for the status report) ...
    restarts: int = 0
    #: ... and the *consecutive fast-failure* streak that counts
    #: against the budget; a healthy stretch resets it.
    fast_failures: int = 0
    quarantined: bool = False
    quarantine_reason: str = ""
    #: When set, the next exit is expected (scale-down or shutdown)
    #: and must not be treated as a crash.
    retiring: bool = False
    #: Pending restart: earliest clock time the respawn may happen.
    restart_at: Optional[float] = None
    probe_failures: int = 0

    @property
    def live(self) -> bool:
        return self.process is not None \
            and self.process.poll() is None


def _default_spawn(argv: List[str]) -> Any:
    """Launch one child; stdout/stderr pass through to the operator."""
    return subprocess.Popen(argv)


def _default_probe(address: str, timeout: float) -> Dict[str, Any]:
    """One ``service stats`` round-trip; raises on any failure.

    ``address`` may be a comma-separated failover list: whichever
    candidate answers first wins, so the probe keeps working after a
    primary dies and its standby promotes.
    """
    last_error: Optional[Exception] = None
    for candidate in parse_address_list(address):
        try:
            with ServiceClient(candidate, timeout=timeout) as client:
                return client.stats()
        except Exception as exc:  # noqa: BLE001 — try the next hub
            last_error = exc
    raise last_error if last_error is not None \
        else ConnectionError(f"no candidates in {address!r}")


class Supervisor:
    """Control loop keeping a hub + worker fleet alive and sized.

    ``hub_argv`` is the command line for the hub component, or
    ``None`` to *attach* to an externally managed hub (the failover
    drill runs primary and standby raw so they can be killed
    independently; the supervisor then owns only the workers).
    ``worker_argv`` is a factory: ``worker_argv(index)`` returns the
    command line for worker slot ``index``.

    ``probe_address`` may be a comma-separated failover list — the
    probe rotates just like clients do, so supervision survives the
    same hub death the fleet does.
    """

    def __init__(self, *,
                 hub_argv: Optional[List[str]],
                 worker_argv: Callable[[int], List[str]],
                 probe_address: str,
                 min_workers: int = 1,
                 max_workers: int = 4,
                 scale_up_depth: int = 8,
                 scale_idle_ticks: int = 5,
                 interval_s: float = 2.0,
                 probe_timeout: float = 5.0,
                 restart_budget: int = DEFAULT_RESTART_BUDGET,
                 healthy_after_s: float = DEFAULT_HEALTHY_AFTER_S,
                 probe_failures_before_kill: int =
                 DEFAULT_PROBE_FAILURES_BEFORE_KILL,
                 retry: Optional[RetryPolicy] = None,
                 status_path: Optional[str] = None,
                 spawn: Callable[[List[str]], Any] = _default_spawn,
                 probe: Callable[[str, float], Dict[str, Any]] =
                 _default_probe,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], bool] = None,  # type: ignore
                 quiet: bool = False) -> None:
        if min_workers < 0:
            raise SupervisorError(
                f"--min-workers must be >= 0, got {min_workers}")
        if max_workers < max(1, min_workers):
            raise SupervisorError(
                f"--max-workers must be >= max(1, min_workers), got "
                f"{max_workers} with min_workers={min_workers}")
        if scale_up_depth < 1:
            raise SupervisorError(
                f"--scale-up-depth must be >= 1, got {scale_up_depth}")
        parse_address_list(probe_address)  # fail fast on typos
        self.worker_argv = worker_argv
        self.probe_address = probe_address
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.scale_up_depth = scale_up_depth
        self.scale_idle_ticks = scale_idle_ticks
        self.interval_s = interval_s
        self.probe_timeout = probe_timeout
        self.restart_budget = restart_budget
        self.healthy_after_s = healthy_after_s
        self.probe_failures_before_kill = probe_failures_before_kill
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=restart_budget, base_delay_s=0.5,
            max_delay_s=15.0)
        self.status_path = status_path
        self.spawn = spawn
        self.probe = probe
        self.clock = clock
        #: Interruptible sleep returning True when a stop arrived.
        self.sleep = sleep if sleep is not None else self._real_sleep
        self.quiet = quiet
        self.hub: Optional[Component] = None
        if hub_argv is not None:
            self.hub = Component(name="hub", argv=list(hub_argv),
                                 role="hub")
        self.workers: List[Component] = []
        self.workers_retired = 0
        self._worker_seq = 0
        self._idle_ticks = 0
        self._stop_event = threading.Event()
        self.ticks = 0
        self.last_stats: Dict[str, Any] = {}

    # -- plumbing ------------------------------------------------------------

    def log(self, message: str) -> None:
        if not self.quiet:
            print(f"[repro-supervise] {message}", file=sys.stderr,
                  flush=True)

    def _real_sleep(self, seconds: float) -> bool:
        # Event.wait, not time.sleep: a SIGTERM handler calling
        # request_stop() must end the wait now, not after the
        # interval (PEP 475 would resume a bare sleep).
        return self._stop_event.wait(seconds)

    @property
    def _stop_requested(self) -> bool:
        return self._stop_event.is_set()

    def request_stop(self) -> None:
        """Signal-handler safe: the loop winds down at the next tick."""
        self._stop_event.set()

    # -- component lifecycle -------------------------------------------------

    def _start(self, component: Component) -> None:
        component.process = self.spawn(component.argv)
        component.started_at = self.clock()
        component.restart_at = None
        component.probe_failures = 0
        component.retiring = False
        self.log(f"started {component.name} "
                 f"(pid {getattr(component.process, 'pid', '?')})")

    def _new_worker(self) -> Component:
        index = self._worker_seq
        self._worker_seq += 1
        component = Component(name=f"worker-{index}",
                              argv=self.worker_argv(index))
        self.workers.append(component)
        self._start(component)
        return component

    def _handle_exit(self, component: Component) -> None:
        """A supervised process is gone: forgive, back off, or bench."""
        returncode = component.process.poll() \
            if component.process is not None else None
        uptime = self.clock() - component.started_at
        if component.retiring:
            # Scale-down or shutdown: the slot is freed entirely.
            self.log(f"{component.name} retired "
                     f"(exit {returncode})")
            component.process = None
            if component in self.workers:
                self.workers.remove(component)
                self.workers_retired += 1
            return
        if uptime >= self.healthy_after_s:
            # It served honestly before dying; a fresh start gets a
            # fresh budget.
            component.fast_failures = 0
        component.fast_failures += 1
        component.restarts += 1
        if component.fast_failures > self.restart_budget:
            component.quarantined = True
            component.quarantine_reason = (
                f"died {component.fast_failures} consecutive times "
                f"within {self.healthy_after_s:.0f}s of starting "
                f"(last exit {returncode})")
            component.process = None
            self.log(f"QUARANTINED {component.name}: "
                     f"{component.quarantine_reason} — no further "
                     "restarts; fix it and restart the supervisor")
            return
        delay = self.retry.delay_s(component.fast_failures - 1)
        component.restart_at = self.clock() + delay
        component.process = None
        self.log(f"{component.name} exited (code {returncode}, up "
                 f"{uptime:.1f}s); restart "
                 f"{component.fast_failures}/{self.restart_budget} "
                 f"in {delay:.1f}s")

    def _kill(self, component: Component, reason: str) -> None:
        self.log(f"killing {component.name}: {reason}")
        try:
            component.process.kill()
            component.process.wait()
        except OSError:
            pass

    def _terminate(self, component: Component) -> None:
        component.retiring = True
        try:
            component.process.send_signal(signal.SIGTERM)
        except OSError:
            pass

    # -- the control loop ----------------------------------------------------

    def tick(self) -> None:
        """One pass of the policy engine; tests call this directly."""
        self.ticks += 1
        now = self.clock()
        components = ([self.hub] if self.hub is not None else []) \
            + list(self.workers)
        for component in components:
            if component.quarantined:
                continue
            if component.process is not None and not component.live:
                self._handle_exit(component)
            if component.process is None \
                    and component.restart_at is not None \
                    and now >= component.restart_at:
                self._start(component)
        self._probe_hub(now)
        self._autoscale()
        self._write_status()

    def _probe_hub(self, now: float) -> None:
        """Stats round-trip: hub liveness signal + autoscale input."""
        hub_running = self.hub is None or self.hub.live
        try:
            self.last_stats = self.probe(self.probe_address,
                                         self.probe_timeout)
        except Exception as exc:  # noqa: BLE001 — any failure counts
            self.last_stats = {}
            if self.hub is None or not hub_running:
                return  # nothing to diagnose: no hub (yet) to blame
            if now - self.hub.started_at < self.healthy_after_s:
                return  # still booting; give it the grace window
            self.hub.probe_failures += 1
            self.log(f"stats probe failed "
                     f"({self.hub.probe_failures}/"
                     f"{self.probe_failures_before_kill}): {exc}")
            if self.hub.probe_failures \
                    >= self.probe_failures_before_kill:
                # Alive but unresponsive: convert hung into crashed
                # and let the restart policy handle the rest.
                self._kill(self.hub, "presumed hung — stats probe "
                           f"failed {self.hub.probe_failures} times")
                self.hub.probe_failures = 0
            return
        if self.hub is not None:
            self.hub.probe_failures = 0

    def _autoscale(self) -> None:
        """Size the live fleet against the queue-depth watermarks."""
        # Refill toward min, but count quarantined slots as occupied:
        # replacing a benched worker with a fresh component would
        # launder the restart budget and flap forever through "new"
        # processes.  Only clean retirements (removed from the list)
        # free slots.  Pending-restart workers count too — they
        # return on their own schedule.
        while len(self.workers) < self.min_workers \
                and len(self.workers) < self.max_workers:
            self._new_worker()
        live = [w for w in self.workers
                if w.live and not w.retiring]
        stats = self.last_stats
        queued = stats.get("queued") if isinstance(stats, dict) else None
        if not isinstance(queued, int):
            return  # no probe data: hold the current size
        if queued >= self.scale_up_depth and self._can_add():
            self._idle_ticks = 0
            worker = self._new_worker()
            self.log(f"scale up: queue depth {queued} >= "
                     f"{self.scale_up_depth} — added {worker.name} "
                     f"({self._live_count()} live)")
            return
        if queued == 0 and len(live) > self.min_workers:
            self._idle_ticks += 1
            if self._idle_ticks >= self.scale_idle_ticks:
                self._idle_ticks = 0
                victim = live[-1]  # newest first: LIFO keeps the
                self._terminate(victim)  # warmest pools longest
                self.log(f"scale down: queue idle for "
                         f"{self.scale_idle_ticks} ticks — retiring "
                         f"{victim.name}")
        else:
            self._idle_ticks = 0

    def _can_add(self) -> bool:
        active = [w for w in self.workers
                  if not w.quarantined and not w.retiring and (
                      w.live or w.restart_at is not None)]
        return len(active) < self.max_workers

    def _live_count(self) -> int:
        return sum(1 for w in self.workers
                   if w.live and not w.retiring)

    # -- reporting -----------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """Machine-readable snapshot (also written to --status-json)."""
        def describe(component: Component) -> Dict[str, Any]:
            return {
                "name": component.name,
                "pid": getattr(component.process, "pid", None)
                if component.live else None,
                "live": component.live,
                "restarts": component.restarts,
                "quarantined": component.quarantined,
                "quarantine_reason": component.quarantine_reason,
                "retiring": component.retiring,
            }
        return {
            "ticks": self.ticks,
            "hub": describe(self.hub) if self.hub is not None else None,
            "workers": [describe(w) for w in self.workers],
            "workers_retired": self.workers_retired,
            "queued": self.last_stats.get("queued")
            if isinstance(self.last_stats, dict) else None,
            "probe_address": self.probe_address,
        }

    def _write_status(self) -> None:
        if not self.status_path:
            return
        tmp = f"{self.status_path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as out:
                json.dump(self.status(), out, sort_keys=True)
                out.write("\n")
            os.replace(tmp, self.status_path)
        except OSError:
            return  # status is advisory; never take the loop down

    # -- entry points --------------------------------------------------------

    @property
    def all_quarantined(self) -> bool:
        """Every supervised component is benched: supervising nothing
        is a failure, not a steady state."""
        components = ([self.hub] if self.hub is not None else []) \
            + list(self.workers)
        return bool(components) \
            and all(c.quarantined for c in components)

    def start_fleet(self) -> None:
        """Launch the hub (unless attached) and the minimum fleet."""
        if self.hub is not None:
            self._start(self.hub)
        for _ in range(max(self.min_workers, 0)):
            self._new_worker()

    def shutdown_fleet(self) -> None:
        """SIGTERM everything, newest worker first, then the hub."""
        for component in reversed(self.workers):
            if component.live:
                self._terminate(component)
        for component in self.workers:
            if component.process is not None:
                try:
                    component.process.wait()
                except OSError:
                    pass
                component.process = None
        if self.hub is not None and self.hub.live:
            self._terminate(self.hub)
            try:
                self.hub.process.wait()
            except OSError:
                pass
            self.hub.process = None
        self._write_status()

    def run(self) -> int:
        """Blocking entry point; returns the process exit code.

        Exit 0 on a requested stop (signal), 1 when every component
        ends up quarantined — the fleet is unrecoverable without
        operator action and pretending otherwise would hide it.
        """
        self.start_fleet()
        try:
            while not self._stop_requested:
                self.tick()
                if self.all_quarantined:
                    self.log("every component is quarantined; "
                             "nothing left to supervise")
                    return 1
                if self.sleep(self.interval_s):
                    break
            return 0
        finally:
            self.shutdown_fleet()
            self.log("fleet stopped")


__all__ = ["Supervisor", "SupervisorError", "Component",
           "DEFAULT_RESTART_BUDGET", "DEFAULT_HEALTHY_AFTER_S",
           "DEFAULT_PROBE_FAILURES_BEFORE_KILL"]
