"""Scheduler-implementation timing models.

The paper's whole argument is about *where* the scheduling loop runs:

* software on a host — "operate[s] in the order of milliseconds due to
  their inherent latency (delays during demand estimation, schedule
  calculation, Input/Output (IO) processing, propagation delay between
  host and switch)" (§2);
* hardware next to the switch — "quick demand estimation, fast schedule
  computation and rapid communication of computed schedules" (§2).

This package prices the same five loop components under both
implementations, so any scheduler from :mod:`repro.schedulers` can be
evaluated "as software" or "as hardware" without touching the algorithm:

=====================  =====================================================
demand estimation      counters-in-fabric vs polling hosts over the network
computation            parallel pipelines vs sequential instructions
IO                     on-chip wires vs kernel/PCIe crossings
propagation            centimetres of board trace vs metres of fibre + stack
synchronisation        none needed vs host–switch time-slot alignment slack
=====================  =====================================================
"""

from repro.hwmodel.hardware import HardwareSchedulerTiming
from repro.hwmodel.presets import TIMING_PRESETS, make_timing
from repro.hwmodel.software import SoftwareSchedulerTiming
from repro.hwmodel.timing import IdealTiming, LatencyBreakdown, SchedulerTiming

__all__ = [
    "SchedulerTiming",
    "LatencyBreakdown",
    "IdealTiming",
    "HardwareSchedulerTiming",
    "SoftwareSchedulerTiming",
    "TIMING_PRESETS",
    "make_timing",
]
