"""Smoke tests: the example scripts must actually run.

Examples are the quickstart surface of the library; a refactor that
breaks them breaks the README.  Only the fast ones run here (the
workload-heavy examples are exercised manually / by the bench harness);
each runs in a subprocess so import side effects stay isolated.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = ["buffering_analysis.py", "quickstart.py",
                 "scenario_gallery.py"]


def _child_can_import_repro() -> bool:
    """Whether a fresh interpreter sees the package.

    The example scripts run in subprocesses, which import ``repro``
    only when it is installed or ``PYTHONPATH`` carries ``src/`` —
    pytest's own ``pythonpath`` config does not propagate to
    children.  Without it the subprocess tests fail for environment
    reasons, not code reasons, so they skip instead.
    """
    probe = subprocess.run([sys.executable, "-c", "import repro"],
                           capture_output=True)
    return probe.returncode == 0


needs_repro_in_child = pytest.mark.skipif(
    not _child_can_import_repro(),
    reason="repro is not importable in a fresh interpreter (install "
           "the package or export PYTHONPATH=src)")


@needs_repro_in_child
@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=120)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), f"{script} printed nothing"


@needs_repro_in_child
def test_buffering_analysis_reproduces_paper_sentence():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "buffering_analysis.py")],
        capture_output=True, text=True, timeout=120)
    assert "5.12GB" in result.stdout
    assert "5.12KB" in result.stdout


def test_all_examples_compile():
    """Every example must at least be syntactically valid."""
    for script in EXAMPLES_DIR.glob("*.py"):
        source = script.read_text()
        compile(source, str(script), "exec")
