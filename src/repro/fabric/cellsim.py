"""The slotted cell simulator.

Per slot:

1. **Arrivals** — Bernoulli per (input, output) pair from the rate
   matrix (at most one cell per pair per slot, the standard model).
2. **Schedule** — the scheduler sees the VOQ *cell counts* as its
   demand matrix and returns one matching.
3. **Service** — one cell departs per matched backlogged pair.

Delay is measured in slots from arrival to departure (FIFO within each
VOQ).  Throughput is departures per slot per port, normalised so 1.0
means every port was busy every slot.

The simulator is deliberately independent of :mod:`repro.sim` — cell
time is just a loop index; there is nothing event-driven about it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

import numpy as np

from repro.schedulers.base import Scheduler
from repro.sim.errors import ConfigurationError


@dataclass(frozen=True)
class FabricStats:
    """Results of one cell-fabric run (measurement window only)."""

    slots: int
    n_ports: int
    arrivals: int
    departures: int
    #: Mean cell delay in slots (arrival slot → departure slot).
    mean_delay_slots: float
    #: Departures / (slots × ports): normalised throughput.
    throughput: float
    #: Offered load actually generated (arrivals / (slots × ports)).
    offered: float
    #: Cells still queued at the end of the window.
    backlog_cells: int
    #: Largest total queued cells observed.
    peak_backlog_cells: int

    @property
    def served_fraction(self) -> float:
        """Departures / arrivals within the window (≈1 when stable)."""
        return self.departures / self.arrivals if self.arrivals else 1.0


class CellFabricSim:
    """Fixed-slot input-queued switch driven by any Scheduler.

    Parameters
    ----------
    scheduler:
        Any :class:`~repro.schedulers.base.Scheduler`; its demand matrix
        is the live VOQ cell-count matrix.
    rates:
        n×n per-slot arrival probabilities (see
        :mod:`repro.fabric.workloads`).
    seed:
        Arrival randomness seed.
    """

    def __init__(self, scheduler: Scheduler, rates: np.ndarray,
                 seed: int = 0) -> None:
        rates = np.asarray(rates, dtype=np.float64)
        n = scheduler.n_ports
        if rates.shape != (n, n):
            raise ConfigurationError(
                f"rates shape {rates.shape} != scheduler ports ({n},{n})")
        if (rates < 0).any() or (rates > 1).any():
            raise ConfigurationError("rates must be probabilities in [0,1]")
        if np.diagonal(rates).any():
            raise ConfigurationError("rates must have a zero diagonal")
        self.scheduler = scheduler
        self.rates = rates
        self.n_ports = n
        self._rng = np.random.default_rng(seed)
        self._counts = np.zeros((n, n), dtype=np.float64)
        self._arrival_slots: List[List[Optional[Deque[int]]]] = [
            [deque() if i != j else None for j in range(n)]
            for i in range(n)
        ]

    def run(self, slots: int, warmup: int = 0) -> FabricStats:
        """Simulate ``warmup + slots`` slots; measure the last ``slots``.

        Warmup fills queues to steady state so delay/throughput are not
        biased by the empty start.
        """
        if slots < 1 or warmup < 0:
            raise ConfigurationError("slots >= 1, warmup >= 0 required")
        n = self.n_ports
        arrivals = 0
        departures = 0
        delay_total = 0
        peak_backlog = 0
        for slot in range(warmup + slots):
            measuring = slot >= warmup
            # Arrivals: one Bernoulli draw per pair.
            draw = self._rng.random((n, n)) < self.rates
            if draw.any():
                src_idx, dst_idx = np.nonzero(draw)
                for src, dst in zip(src_idx.tolist(), dst_idx.tolist()):
                    self._counts[src, dst] += 1
                    queue = self._arrival_slots[src][dst]
                    assert queue is not None
                    queue.append(slot)
                if measuring:
                    arrivals += int(draw.sum())
            # Schedule on current occupancy.
            result = self.scheduler.compute(self._counts)
            matching = result.first
            # Serve one cell per matched backlogged pair.
            for src, dst in matching.pairs():
                if self._counts[src, dst] >= 1:
                    self._counts[src, dst] -= 1
                    queue = self._arrival_slots[src][dst]
                    assert queue is not None
                    arrived = queue.popleft()
                    if measuring:
                        departures += 1
                        delay_total += slot - arrived
            backlog = int(self._counts.sum())
            if measuring and backlog > peak_backlog:
                peak_backlog = backlog
        mean_delay = delay_total / departures if departures else 0.0
        return FabricStats(
            slots=slots,
            n_ports=n,
            arrivals=arrivals,
            departures=departures,
            mean_delay_slots=mean_delay,
            throughput=departures / (slots * n),
            offered=arrivals / (slots * n),
            backlog_cells=int(self._counts.sum()),
            peak_backlog_cells=peak_backlog,
        )


__all__ = ["CellFabricSim", "FabricStats"]
