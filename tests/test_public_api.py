"""Public-API surface tests: imports, exports, doctests.

A library's import graph and documented examples are part of its
contract; these tests keep them honest.
"""

import doctest
import importlib

import pytest


PACKAGES = [
    "repro",
    "repro.sim",
    "repro.net",
    "repro.switches",
    "repro.schedulers",
    "repro.hwmodel",
    "repro.core",
    "repro.fabric",
    "repro.traffic",
    "repro.analysis",
    "repro.control",
    "repro.faults",
    "repro.experiments",
]


class TestImports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_package_imports(self, package):
        importlib.import_module(package)

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_exports_resolve(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.{name} missing"

    def test_version_present(self):
        import repro

        assert repro.__version__


class TestRegistryCompleteness:
    def test_every_builtin_algorithm_registered(self):
        from repro.schedulers.registry import available_schedulers

        expected = {"tdma", "pim", "islip", "wfa", "mwm", "greedy-mwm",
                    "bvn", "solstice", "eclipse", "hotspot",
                    "distributed-greedy"}
        assert expected <= set(available_schedulers())

    def test_every_registered_scheduler_instantiates(self):
        from repro.schedulers.registry import (
            available_schedulers,
            create_scheduler,
        )

        for name in available_schedulers():
            scheduler = create_scheduler(name, n_ports=4)
            assert scheduler.n_ports == 4

    def test_timing_presets_complete(self):
        from repro.hwmodel.presets import TIMING_PRESETS

        assert {"netfpga_sume", "asic_1ghz", "cpu_helios",
                "cpu_cthrough", "ideal"} == set(TIMING_PRESETS)


class TestDoctests:
    @pytest.mark.parametrize("module_name", [
        "repro.sim.time",
        "repro.analysis.charts",
    ])
    def test_module_doctests_pass(self, module_name):
        module = importlib.import_module(module_name)
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0
        assert results.attempted > 0
