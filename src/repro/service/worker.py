"""Remote worker node: ``repro worker --connect ADDR``.

A :class:`ReproWorker` is the other half of the fleet protocol the
daemon's lease scheduler speaks (see :mod:`repro.service.protocol`):
it dials a ``repro serve`` daemon, registers with a capability payload
(parallel width, replica-batch support, repro version), then sits in a
pull loop — the daemon leases it batches of canonical ``RunSpec``
payloads sized to its width, it executes them on its own local
:class:`~repro.runner.executor.JobRunner`, and uploads one canonical
report payload per spec as each settles.

Design points:

* **Byte-identity is inherited, not re-proven.**  A spec fully
  determines its report and uploads reuse the canonical payload form
  of :mod:`repro.runner.cache`, so results are indistinguishable from
  local execution no matter which node ran them.
* **Crash isolation is inherited too.**  The runner's warm-worker
  pool already turns a segfaulting job into a FAIL-row outcome
  (``WorkerCrashError`` semantics); an ordinary entry-point exception
  aborts only the rest of its own lease, whose unsettled specs are
  uploaded as error rows — the worker process survives both.
* **Liveness is a background heartbeat thread**, so a long-running
  lease does not look like a death.  The daemon picks the interval
  (a third of its lease timeout) and tells us at registration.
  Socket writes (uploads from the lease loop, heartbeats from the
  thread) share one lock; frames are atomic under it.
* **A dead daemon is handled like a dead server anywhere else** —
  the CLI maps a failed dial or a version-mismatch handshake to exit
  code 2 with a one-line error, and a connection lost mid-service to
  exit code 1.
"""

from __future__ import annotations

import os
import socket
import sys
import threading
import time
from typing import Any, Dict, List, Optional

from repro.experiments.base import ExperimentReport
from repro.runner.cache import report_to_payload
from repro.runner.executor import JobRunner, RunOutcome
from repro.runner.spec import RunSpec
from repro.service.protocol import (
    ProtocolError,
    connect,
    read_frame,
    register_frame,
    write_frame,
)


class WorkerError(RuntimeError):
    """Registration or service failed in a way the worker reports
    with one line and an exit code (see ``repro worker``)."""


class ReproWorker:
    """One remote execution node for a ``repro serve`` daemon.

    Construct, then call :meth:`run` (blocking; the CLI path) or hand
    :meth:`run` to a thread and use :meth:`wait_registered` /
    :meth:`stop` (tests and benches).  ``run`` returns the process
    exit code: 0 after a clean ``bye`` or :meth:`stop`, 1 when the
    daemon vanishes mid-service; a daemon that cannot be dialed or
    refuses registration raises (``OSError`` / :class:`WorkerError`)
    so the CLI can map both to exit code 2.
    """

    def __init__(self, address: str, *, jobs: int = 1,
                 replica_batch: bool = False,
                 name: Optional[str] = None,
                 timeout: float = 30.0,
                 quiet: bool = False) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.address = address
        self.jobs = jobs
        self.replica_batch = replica_batch
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.timeout = timeout
        self.quiet = quiet
        self._runner = JobRunner(jobs=jobs, replica_batch=replica_batch)
        self._sock: Optional[socket.socket] = None
        self._send_lock = threading.Lock()
        self._registered = threading.Event()
        self._stopping = False
        self.worker_id: Optional[int] = None
        self.heartbeat_interval_s = 5.0
        self.leases_run = 0
        self.specs_completed = 0
        self.specs_failed = 0

    # -- lifecycle -----------------------------------------------------------

    def log(self, message: str) -> None:
        if not self.quiet:
            print(f"[repro-worker] {message}", file=sys.stderr,
                  flush=True)

    def wait_registered(self, timeout: float = 10.0) -> bool:
        """Block until the handshake completed (thread-mode tests)."""
        return self._registered.wait(timeout)

    def stop(self) -> None:
        """Thread-safe clean-stop request: closes the socket, which
        pops the serve loop out of its blocking read with exit 0."""
        self._stopping = True
        sock = self._sock
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def run(self) -> int:
        """Warm, dial, register, then serve leases until told to stop.

        Raises ``OSError`` (daemon unreachable) or :class:`WorkerError`
        (registration refused) before any work is accepted; after
        that, returns an exit code instead of raising.
        """
        self._runner.warm()  # fork workers before any threads exist
        self._connect()
        heartbeat = threading.Thread(target=self._heartbeat_loop,
                                     name="repro-worker-heartbeat",
                                     daemon=True)
        heartbeat.start()
        try:
            return self._serve()
        except (ProtocolError, OSError) as exc:
            # An upload failed mid-lease: the daemon is gone (it will
            # have reassigned our leases the moment the socket died).
            if self._stopping:
                return 0
            self.log(f"connection to {self.address} lost: {exc}")
            return 1
        finally:
            self._stopping = True
            self.stop()

    # -- the fleet protocol, worker side -------------------------------------

    def _connect(self) -> None:
        self._sock = connect(self.address, timeout=self.timeout)
        self._send(register_frame(jobs=self.jobs,
                                  replica_batch=self.replica_batch,
                                  name=self.name))
        reply = read_frame(self._sock)
        if reply is None:
            raise WorkerError(
                "server closed the connection during registration")
        if reply.get("type") == "error":
            raise WorkerError(
                f"registration refused [{reply.get('code')}]: "
                f"{reply.get('message')}")
        if reply.get("type") != "registered":
            raise WorkerError(
                f"expected a registered frame, got "
                f"{reply.get('type')!r}")
        self.worker_id = reply.get("worker_id")
        interval = reply.get("heartbeat_interval_s")
        if isinstance(interval, (int, float)) and interval > 0:
            self.heartbeat_interval_s = float(interval)
        # Leases can be minutes apart on a busy fleet; only our own
        # outbound heartbeats are time-bounded.
        self._sock.settimeout(None)
        self._registered.set()
        self.log(f"registered with {self.address} as worker "
                 f"{self.worker_id} (jobs={self.jobs})")

    def _send(self, frame: Dict[str, Any]) -> None:
        sock = self._sock
        if sock is None:
            raise OSError("worker socket is closed")
        with self._send_lock:
            write_frame(sock, frame)

    def _heartbeat_loop(self) -> None:
        while not self._stopping:
            time.sleep(self.heartbeat_interval_s)
            if self._stopping:
                return
            try:
                self._send({"type": "heartbeat"})
            except OSError:
                return  # the serve loop surfaces the dead connection

    def _serve(self) -> int:
        assert self._sock is not None
        while True:
            try:
                frame = read_frame(self._sock)
            except (ProtocolError, OSError) as exc:
                if self._stopping:
                    return 0
                self.log(f"connection to {self.address} lost: {exc}")
                return 1
            if frame is None:
                if self._stopping:
                    return 0
                self.log(f"{self.address} closed the connection "
                         "without a bye")
                return 1
            kind = frame.get("type")
            if kind == "lease":
                self._run_lease(frame)
            elif kind == "bye":
                self.log(f"daemon said bye after {self.leases_run} "
                         f"lease(s) ({self.specs_completed} ok, "
                         f"{self.specs_failed} failed); exiting")
                return 0
            elif kind == "error":
                self.log(f"daemon error [{frame.get('code')}]: "
                         f"{frame.get('message')}")
                return 1
            # anything else: ignore — forward-compatible

    def _run_lease(self, frame: Dict[str, Any]) -> None:
        """Execute one leased batch, uploading results as they settle.

        The daemon only ever leases well-formed canonical specs; if
        this one did not, the stream cannot be trusted and the raise
        below drops the connection (the daemon reassigns the lease).
        """
        lease_id = frame.get("lease_id")
        payloads = frame.get("specs")
        if not isinstance(payloads, list) or not payloads:
            raise ProtocolError(
                "bad-lease",
                f"lease {lease_id!r} carries no spec list")
        try:
            specs = [RunSpec.from_canonical(payload)
                     for payload in payloads]
        except (KeyError, TypeError, AttributeError) as exc:
            raise ProtocolError(
                "bad-lease",
                f"lease {lease_id!r} carries a malformed spec: "
                f"{exc}") from exc
        self.leases_run += 1
        self.log(f"lease {lease_id}: {len(specs)} job(s)")
        uploaded = set()

        def upload(outcome: RunOutcome) -> None:
            self._upload(lease_id, outcome)
            uploaded.add(outcome.spec.key())

        try:
            self._runner.run(specs, on_outcome=upload)
        except (ProtocolError, OSError):
            raise  # the connection itself failed mid-upload
        except Exception as exc:  # noqa: BLE001
            # Same contract as the daemon's local batches: an ordinary
            # entry-point exception aborts the rest of *this lease*
            # inside execute(); every unsettled spec fails visibly and
            # the worker keeps serving.
            self.log(f"lease {lease_id} aborted by a job exception: "
                     f"{type(exc).__name__}: {exc}")
            self._fail_rest(lease_id, specs, uploaded, str(exc))

    def _upload(self, lease_id: Any, outcome: RunOutcome) -> None:
        if outcome.error is None:
            self.specs_completed += 1
        else:
            self.specs_failed += 1
        self._send({
            "type": "upload",
            "lease_id": lease_id,
            "key": outcome.spec.key(),
            "elapsed_s": outcome.elapsed_s,
            "error": outcome.error,
            "report": report_to_payload(outcome.report),
        })

    def _fail_rest(self, lease_id: Any, specs: List[RunSpec],
                   uploaded: set, message: str) -> None:
        for spec in specs:
            key = spec.key()
            if key in uploaded:
                continue
            error = f"{key}: {message}"
            report = ExperimentReport(
                experiment_id=spec.experiment_id,
                title="job failed — exception in the entry point",
                warnings=[error])
            self._upload(lease_id, RunOutcome(
                spec, report, cached=False, elapsed_s=0.0,
                error=error))


__all__ = ["ReproWorker", "WorkerError"]
