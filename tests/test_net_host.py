"""Tests for the host model (both buffering regimes)."""

import pytest

from repro.net.host import Host, HostBufferMode
from repro.net.link import Link
from repro.net.packet import Packet, wire_size
from repro.sim.errors import ConfigurationError
from repro.sim.time import GIGABIT, MICROSECONDS


def _host(sim, mode=HostBufferMode.SWITCH_BUFFERED, skew=0, host_id=0):
    received = []
    uplink = Link(sim, "up", 10 * GIGABIT,
                  sink=lambda p: received.append(p))
    host = Host(sim, host_id, uplink, mode=mode, clock_skew_ps=skew)
    return host, received


def _packet(src=0, dst=1, size=1500):
    return Packet(src=src, dst=dst, size=size, created_ps=0)


class TestSwitchBufferedMode:
    def test_emit_sends_immediately(self, sim):
        host, received = _host(sim)
        host.emit(_packet())
        sim.run()
        assert len(received) == 1
        assert host.queued_bytes == 0

    def test_emit_validates_src(self, sim):
        host, __ = _host(sim, host_id=0)
        with pytest.raises(ConfigurationError):
            host.emit(_packet(src=3))

    def test_grant_rejected_in_switch_buffered_mode(self, sim):
        host, __ = _host(sim)
        with pytest.raises(ConfigurationError):
            host.grant(1, 0, 100)

    def test_emitted_counter(self, sim):
        host, __ = _host(sim)
        host.emit(_packet(size=100))
        host.emit(_packet(size=200))
        assert host.emitted.count == 2
        assert host.emitted.bytes == 300


class TestHostBufferedMode:
    def test_emit_queues_until_grant(self, sim):
        host, received = _host(sim, HostBufferMode.HOST_BUFFERED)
        host.emit(_packet(size=1000))
        sim.run()
        assert received == []
        assert host.queued_bytes == 1000
        assert host.queued_bytes_to(1) == 1000
        assert host.queued_bytes_to(2) == 0

    def test_grant_releases_packets_in_window(self, sim):
        host, received = _host(sim, HostBufferMode.HOST_BUFFERED)
        host.emit(_packet(size=1000))
        host.emit(_packet(size=1000))
        host.grant(dst=1, start_ps=1000, duration_ps=10 * MICROSECONDS)
        sim.run()
        assert len(received) == 2
        assert host.queued_bytes == 0

    def test_grant_window_too_small_sends_partial(self, sim):
        host, received = _host(sim, HostBufferMode.HOST_BUFFERED)
        tx = wire_size(1500) * 8 * 100  # 1216ns at 10G
        for __ in range(3):
            host.emit(_packet())
        # Window fits exactly one serialisation.
        host.grant(dst=1, start_ps=0, duration_ps=tx + 1)
        sim.run()
        assert len(received) == 1
        assert host.queued_bytes == 2 * 1500

    def test_grant_for_other_destination_releases_nothing(self, sim):
        host, received = _host(sim, HostBufferMode.HOST_BUFFERED)
        host.emit(_packet(dst=1))
        host.grant(dst=2, start_ps=0, duration_ps=10 * MICROSECONDS)
        sim.run()
        assert received == []

    def test_clock_skew_delays_window_open(self, sim):
        skew = 5 * MICROSECONDS
        host, received = _host(sim, HostBufferMode.HOST_BUFFERED,
                               skew=skew)
        host.emit(_packet())
        host.grant(dst=1, start_ps=1000, duration_ps=20 * MICROSECONDS)
        sim.run()
        assert len(received) == 1
        # First byte cannot have left before the skewed start.
        assert received[0].dequeued_ps >= 1000 + skew

    def test_demand_vector(self, sim):
        host, __ = _host(sim, HostBufferMode.HOST_BUFFERED)
        host.emit(_packet(dst=1, size=100))
        host.emit(_packet(dst=3, size=200))
        host.emit(_packet(dst=3, size=300))
        assert host.demand_vector(4) == [0, 100, 0, 500]

    def test_peak_occupancy_tracked(self, sim):
        host, __ = _host(sim, HostBufferMode.HOST_BUFFERED)
        host.emit(_packet(size=700))
        host.emit(_packet(size=800))
        host.grant(dst=1, start_ps=0, duration_ps=10 * MICROSECONDS)
        sim.run()
        assert host.peak_queued_bytes == 1500
        assert host.queued_bytes == 0


class TestReceive:
    def test_receive_stamps_delivery(self, sim):
        host, __ = _host(sim)
        packet = Packet(src=1, dst=0, size=64, created_ps=0)
        sim.schedule(500, lambda: host.receive(packet))
        sim.run()
        assert packet.delivered_ps == 500
        assert host.delivered_packets == [packet]
        assert host.received.bytes == 64

    def test_on_deliver_hook(self, sim):
        host, __ = _host(sim)
        seen = []
        host.on_deliver = seen.append
        packet = Packet(src=1, dst=0, size=64, created_ps=0)
        host.receive(packet)
        assert seen == [packet]
