"""Ablation benches for the design choices DESIGN.md calls out.

Four ablations, each isolating one knob of the framework:

* **iSLIP iteration count** — matching quality vs hardware cost.
* **Demand estimator** (instant / EWMA / sketch) inside the full
  framework — does estimation error reach end-to-end utilisation?
* **EPS residual capacity** — how thin can the electrical path be
  before residue backs up?
* **Distributed scheduling staleness** — what decentralising the
  scheduler costs in matching weight as its demand view ages.

Each ablation's knob sweep is routed through the runner's
order-preserving :func:`repro.runner.map_jobs`: every point is a
module-level pure function of its knob value, so the sweep can fan out
across worker processes (``REPRO_BENCH_JOBS=N``) with bit-identical
results to the default sequential run.
"""

import os

import numpy as np

from repro.analysis.tables import render_table
from repro.control.distributed import DistributedGreedyScheduler
from repro.core.config import FrameworkConfig
from repro.core.framework import HybridSwitchFramework
from repro.fabric.cellsim import CellFabricSim
from repro.fabric.workloads import diagonal_rates
from repro.runner import map_jobs
from repro.schedulers.islip import IslipScheduler
from repro.schedulers.mwm import MwmScheduler
from repro.sim.time import GIGABIT, MICROSECONDS, MILLISECONDS
from repro.traffic.patterns import HotspotDestination
from repro.traffic.sources import OnOffSource


def _bench_jobs() -> int:
    """Worker processes per ablation sweep (default: sequential)."""
    return max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))


def _hotspot_framework(estimator="instant", eps_rate=2.5 * GIGABIT,
                       seed=17):
    config = FrameworkConfig(
        n_ports=8,
        switching_time_ps=20 * MICROSECONDS,
        scheduler="hotspot",
        scheduler_kwargs={"threshold_bytes": 20_000.0},
        timing_preset="netfpga_sume",
        estimator=estimator,
        epoch_ps=200 * MICROSECONDS,
        default_slot_ps=160 * MICROSECONDS,
        eps_rate_bps=eps_rate,
        seed=seed,
    )
    fw = HybridSwitchFramework(config)
    for host in fw.hosts:
        OnOffSource(
            fw.sim, host,
            burst_rate_bps=0.6 * config.port_rate_bps,
            mean_on_ps=200 * MICROSECONDS,
            mean_off_ps=250 * MICROSECONDS,
            chooser=HotspotDestination(
                8, host.host_id, skew=0.7,
                rng=fw.sim.streams.stream(f"d{host.host_id}")),
            rng=fw.sim.streams.stream(f"s{host.host_id}"))
    return fw


def _islip_point(iterations):
    """(iterations, throughput, mean delay) on adversarial load."""
    sched = IslipScheduler(16, iterations=iterations)
    stats = CellFabricSim(sched, diagonal_rates(16, 0.9),
                          seed=6).run(3_000, warmup=500)
    return iterations, stats.throughput, stats.mean_delay_slots


def _estimator_point(estimator):
    """(estimator, OCS fraction, utilisation) in the full framework."""
    fw = _hotspot_framework(estimator=estimator)
    result = fw.run(6 * MILLISECONDS)
    return estimator, result.ocs_fraction, result.utilisation()


def _eps_point(eps_gbps):
    """(rate, utilisation, peak queue, drops) for one EPS provisioning."""
    fw = _hotspot_framework(eps_rate=eps_gbps * GIGABIT)
    result = fw.run(6 * MILLISECONDS)
    return (eps_gbps, result.utilisation(),
            result.eps_peak_buffer_bytes, result.drops["eps_tail"])


def _staleness_point(staleness):
    """(staleness, weight ratio vs centralized MWM) on drifting demand."""
    rng = np.random.default_rng(11)
    # A drifting demand sequence: hotspots move every few epochs.
    demands = []
    base = rng.exponential(50_000, (8, 8))
    np.fill_diagonal(base, 0.0)
    for epoch in range(40):
        drift = np.roll(base, epoch // 4, axis=1).copy()
        np.fill_diagonal(drift, 0.0)
        demands.append(drift)
    central = MwmScheduler(8)
    distributed = DistributedGreedyScheduler(
        8, staleness_epochs=staleness)
    got = 0.0
    best = 0.0
    for demand in demands:
        got += distributed.compute(demand).first.weight(demand)
        best += central.compute(demand).first.weight(demand)
    return staleness, got / best


def test_ablation_islip_iterations(benchmark):
    """Throughput vs iteration count on adversarial load."""

    def run():
        points = map_jobs(_islip_point, (1, 2, 4, 8), jobs=_bench_jobs())
        rows = [[str(i), f"{throughput:.3f}", f"{delay:.1f}"]
                for i, throughput, delay in points]
        print()
        print(render_table(
            ["iSLIP iterations", "throughput", "mean delay (slots)"],
            rows, title="ablation: iSLIP iterations, diagonal 0.9"))
        return {i: throughput for i, throughput, __ in points}

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    assert series[4] >= series[1] - 0.02


def test_ablation_demand_estimator(benchmark):
    """Does estimator choice reach end-to-end OCS offload?"""

    def run():
        points = map_jobs(_estimator_point, ("instant", "ewma", "sketch"),
                          jobs=_bench_jobs())
        rows = [[name, f"{fraction:.3f}", f"{util:.3f}"]
                for name, fraction, util in points]
        print()
        print(render_table(
            ["estimator", "OCS byte fraction", "utilisation"],
            rows, title="ablation: demand estimator in the framework"))
        return {name: fraction for name, fraction, __ in points}

    fractions = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(0.0 <= f <= 1.0 for f in fractions.values())


def test_ablation_eps_capacity(benchmark):
    """Residual-path provisioning: EPS rate from 10G down to 0.5G."""

    def run():
        points = map_jobs(_eps_point, (10.0, 2.5, 1.0, 0.5),
                          jobs=_bench_jobs())
        rows = [[f"{gbps:.1f}G", f"{util:.3f}", str(peak), str(drops)]
                for gbps, util, peak, drops in points]
        print()
        print(render_table(
            ["EPS rate", "utilisation", "peak EPS queue (B)",
             "EPS drops"],
            rows, title="ablation: residual electrical capacity"))
        return {gbps: peak for gbps, __, peak, __d in points}

    peaks = benchmark.pedantic(run, rounds=1, iterations=1)
    # A thinner residual path must queue at least as much residue.
    assert peaks[0.5] >= peaks[10.0]


def test_ablation_distributed_staleness(benchmark):
    """Matching weight lost to stale demand views (decentralisation)."""

    def run():
        points = map_jobs(_staleness_point, (0, 1, 2, 4, 8),
                          jobs=_bench_jobs())
        rows = [[str(staleness), f"{ratio:.3f}"]
                for staleness, ratio in points]
        print()
        print(render_table(
            ["staleness (epochs)", "weight vs centralized MWM"],
            rows, title="ablation: distributed scheduling staleness"))
        return dict(points)

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    assert ratios[8] <= ratios[0] + 1e-9  # staleness never helps
