"""ASCII charts for experiment reports.

The bench harness prints tables; for sweeps with many points a picture
reads faster.  Pure-text rendering keeps the repository dependency-free
and the output greppable.

* :func:`sparkline` — one-line summary of a series (▁▂▃▅▇).
* :func:`line_chart` — a y-vs-x character grid with axis labels,
  optional log-y, multiple named series.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.sim.errors import ConfigurationError

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"
_MARKERS = "*o+x#@%&"


def sparkline(values: Sequence[float]) -> str:
    """Render a series as one line of block characters.

    >>> sparkline([0, 1, 2, 3])
    '▁▃▅█'
    """
    if not values:
        return ""
    lo = min(values)
    hi = max(values)
    span = hi - lo
    if span == 0:
        return _SPARK_LEVELS[0] * len(values)
    chars = []
    for value in values:
        level = int((value - lo) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


def line_chart(xs: Sequence[float],
               series: Dict[str, Sequence[float]],
               width: int = 60, height: int = 15,
               x_label: str = "x", y_label: str = "y",
               log_y: bool = False,
               title: str = "") -> str:
    """Plot named series against shared x values on a character grid.

    Each series gets a marker from a fixed cycle; the legend maps
    marker → name.  ``log_y`` plots log10(y) (values must be > 0).
    """
    if width < 10 or height < 4:
        raise ConfigurationError("chart too small to be legible")
    if not xs:
        raise ConfigurationError("empty x axis")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ConfigurationError(
                f"series {name!r} has {len(ys)} points for {len(xs)} xs")

    def transform(value: float) -> float:
        if not log_y:
            return value
        if value <= 0:
            raise ConfigurationError("log_y needs positive values")
        return math.log10(value)

    all_y = [transform(y) for ys in series.values() for y in ys]
    y_lo, y_hi = min(all_y), max(all_y)
    x_lo, x_hi = min(xs), max(xs)
    y_span = y_hi - y_lo or 1.0
    x_span = x_hi - x_lo or 1.0
    grid: List[List[str]] = [[" "] * width for __ in range(height)]
    for index, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(xs, ys):
            col = int((x - x_lo) / x_span * (width - 1))
            row = int((transform(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker
    lines: List[str] = []
    if title:
        lines.append(title)
    y_hi_text = f"{(10 ** y_hi if log_y else y_hi):.3g}"
    y_lo_text = f"{(10 ** y_lo if log_y else y_lo):.3g}"
    margin = max(len(y_hi_text), len(y_lo_text), len(y_label)) + 1
    lines.append(f"{y_label.rjust(margin)}")
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = y_hi_text.rjust(margin)
        elif row_index == height - 1:
            prefix = y_lo_text.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * margin + "+" + "-" * width)
    x_axis = (f"{x_lo:.3g}".ljust(width - 8) + f"{x_hi:.3g}")
    lines.append(" " * (margin + 1) + x_axis + f"  {x_label}")
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}"
        for i, name in enumerate(series))
    lines.append(" " * (margin + 1) + legend)
    return "\n".join(lines)


__all__ = ["sparkline", "line_chart"]
