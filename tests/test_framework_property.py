"""Property-based end-to-end checks on the whole framework.

Hypothesis drives random-but-valid configurations through short runs
and asserts the invariants that must hold for *every* configuration:
protocol cleanliness, packet conservation, and byte-accounting
consistency.  This is the closest a simulator gets to the paper's
"evaluation under real traffic workloads": no hand-picked corner cases.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.audit import ProtocolAuditor
from repro.core.config import FrameworkConfig
from repro.core.framework import HybridSwitchFramework
from repro.sim.time import MICROSECONDS
from repro.traffic.patterns import HotspotDestination
from repro.traffic.sources import PoissonSource


@st.composite
def framework_configs(draw):
    n_ports = draw(st.sampled_from([3, 4, 6]))
    switching_us = draw(st.sampled_from([0, 1, 5, 20]))
    scheduler = draw(st.sampled_from(
        ["islip", "wfa", "mwm", "greedy-mwm",
         "hotspot", "tdma"]))
    slot_us = draw(st.sampled_from([10, 25, 60]))
    seed = draw(st.integers(0, 2 ** 16))
    return FrameworkConfig(
        n_ports=n_ports,
        switching_time_ps=switching_us * MICROSECONDS,
        scheduler=scheduler,
        timing_preset="netfpga_sume",
        default_slot_ps=slot_us * MICROSECONDS,
        seed=seed,
    )


class TestFrameworkProperties:
    @given(config=framework_configs(),
           load=st.sampled_from([0.1, 0.3, 0.5]))
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_any_config_is_protocol_clean_and_conserving(self, config,
                                                         load):
        fw = HybridSwitchFramework(config)
        auditor = ProtocolAuditor(fw)
        for host in fw.hosts:
            PoissonSource(
                fw.sim, host,
                rate_bps=load * config.port_rate_bps,
                chooser=HotspotDestination(
                    config.n_ports, host.host_id, skew=0.4,
                    rng=fw.sim.streams.stream(f"d{host.host_id}")),
                rng=fw.sim.streams.stream(f"s{host.host_id}"))
        result = fw.run(800 * MICROSECONDS)
        # Protocol invariants hold for every configuration.
        auditor.check_conservation(result)
        auditor.assert_clean()
        # Byte accounting is internally consistent.
        assert result.delivered_bytes == \
            result.ocs_bytes + result.eps_bytes
        assert 0.0 <= result.ocs_fraction <= 1.0
        assert result.delivered_count <= result.offered_packets
        # The configure-then-grant discipline means the OCS never eats
        # granted traffic.
        assert result.drops["ocs_dark"] == 0
        assert result.drops["ocs_misdirected"] == 0
