"""Tests for the electrical packet switch model."""

import pytest

from repro.net.packet import Packet, wire_size
from repro.sim.errors import ConfigurationError
from repro.sim.time import GIGABIT, NANOSECONDS
from repro.switches.eps import ElectricalPacketSwitch


def _eps(sim, n=4, rate=10 * GIGABIT, latency=500 * NANOSECONDS,
         capacity=None):
    delivered = []
    eps = ElectricalPacketSwitch(sim, n, port_rate_bps=rate,
                                 forwarding_latency_ps=latency,
                                 queue_capacity_bytes=capacity)
    for port in range(n):
        eps.connect_output(
            port, lambda p, _port=port: delivered.append((_port, sim.now, p)))
    return eps, delivered


def _packet(src=0, dst=1, size=1500):
    return Packet(src=src, dst=dst, size=size, created_ps=0)


class TestForwarding:
    def test_delivers_to_destination_port(self, sim):
        eps, delivered = _eps(sim)
        packet = _packet(dst=2)
        eps.receive(packet)
        sim.run()
        assert len(delivered) == 1
        port, __, got = delivered[0]
        assert port == 2 and got is packet
        assert packet.via == "eps"

    def test_latency_is_pipeline_plus_serialisation(self, sim):
        latency = 500 * NANOSECONDS
        eps, delivered = _eps(sim, latency=latency)
        eps.receive(_packet(size=1500))
        sim.run()
        tx = wire_size(1500) * 8 * 100  # 10G
        assert delivered[0][1] == latency + tx

    def test_output_queue_serialises_fifo(self, sim):
        eps, delivered = _eps(sim)
        a, b = _packet(), _packet()
        eps.receive(a)
        eps.receive(b)
        sim.run()
        tx = wire_size(1500) * 8 * 100
        assert delivered[0][2] is a
        assert delivered[1][2] is b
        assert delivered[1][1] - delivered[0][1] == tx

    def test_different_outputs_drain_in_parallel(self, sim):
        eps, delivered = _eps(sim)
        eps.receive(_packet(dst=1))
        eps.receive(_packet(src=2, dst=3))
        sim.run()
        assert delivered[0][1] == delivered[1][1]

    def test_slow_residual_rate(self, sim):
        eps, delivered = _eps(sim, rate=1 * GIGABIT, latency=0)
        eps.receive(_packet(size=1500))
        sim.run()
        assert delivered[0][1] == wire_size(1500) * 8 * 1000  # 1G


class TestCapacity:
    def test_tail_drop_at_capacity(self, sim):
        eps, delivered = _eps(sim, capacity=1500, latency=0)
        for __ in range(5):
            eps.receive(_packet())
        sim.run()
        # With zero pipeline latency packets arrive at the queue one
        # event at a time while the first is still serialising.
        assert eps.drops_total() >= 1
        assert len(delivered) + eps.drops_total() == 5

    def test_unbounded_by_default(self, sim):
        eps, delivered = _eps(sim)
        for __ in range(50):
            eps.receive(_packet())
        sim.run()
        assert eps.drops_total() == 0
        assert len(delivered) == 50


class TestAccounting:
    def test_counters(self, sim):
        eps, __ = _eps(sim)
        eps.receive(_packet(size=100))
        sim.run()
        assert eps.received.count == 1
        assert eps.forwarded.count == 1
        assert eps.forwarded.bytes == 100

    def test_peak_queue_bytes(self, sim):
        eps, __ = _eps(sim, latency=0)
        for __idx in range(3):
            eps.receive(_packet(size=1000))
        sim.run()
        assert eps.peak_queue_bytes() >= 1000

    def test_total_queued_bytes_live(self, sim):
        eps, __ = _eps(sim)
        eps.receive(_packet(size=1000))
        assert eps.total_queued_bytes == 0  # still in the pipeline
        sim.run(until=500 * NANOSECONDS)
        # After the pipeline delay the packet is queued or draining.
        assert eps.total_queued_bytes in (0, 1000)


class TestValidation:
    def test_min_ports(self, sim):
        with pytest.raises(ConfigurationError):
            ElectricalPacketSwitch(sim, 1)

    def test_positive_rate(self, sim):
        with pytest.raises(ConfigurationError):
            ElectricalPacketSwitch(sim, 4, port_rate_bps=0)
