"""Integer-picosecond time base and unit helpers.

All simulated time in :mod:`repro` is an ``int`` count of picoseconds.
Using integers instead of floating-point seconds removes an entire class
of bugs: events scheduled from accumulated floats drift, compare
unstably, and make runs non-reproducible across platforms.  A picosecond
granularity is fine enough to represent a single bit time at 400 Gbps
(2.5 ps) exactly, and a 64-bit int holds ~107 days of picoseconds, far
beyond any experiment here.

Conventions
-----------

* Durations and timestamps are **picoseconds** unless a name says
  otherwise (``*_s`` for float seconds).
* Rates are **bits per second** as plain numbers (``10e9`` or the
  :data:`GIGABIT` multiple).
* Sizes are **bytes** as plain ints.
"""

from __future__ import annotations

import re
from functools import lru_cache

# -- duration units, all in picoseconds ------------------------------------

PICOSECONDS = 1
NANOSECONDS = 1_000
MICROSECONDS = 1_000_000
MILLISECONDS = 1_000_000_000
SECONDS = 1_000_000_000_000

# -- size units, in bytes ----------------------------------------------------

KILOBYTE = 1_000
MEGABYTE = 1_000_000
GIGABYTE = 1_000_000_000
KIBIBYTE = 1_024
MEBIBYTE = 1_024 * 1_024
GIBIBYTE = 1_024 * 1_024 * 1_024

# -- rate units, in bits per second ------------------------------------------

MEGABIT = 1_000_000
GIGABIT = 1_000_000_000

_UNIT_TO_PS = {
    "ps": PICOSECONDS,
    "ns": NANOSECONDS,
    "us": MICROSECONDS,
    "µs": MICROSECONDS,
    "ms": MILLISECONDS,
    "s": SECONDS,
}

_TIME_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*(ps|ns|us|µs|ms|s)\s*$")


def parse_time(text: str) -> int:
    """Parse a human time string like ``"1.5us"`` into picoseconds.

    Accepts ``ps``, ``ns``, ``us``/``µs``, ``ms`` and ``s`` suffixes.
    Fractional values are rounded to the nearest picosecond.

    >>> parse_time("100ns")
    100000
    >>> parse_time("1.5us")
    1500000
    """
    match = _TIME_RE.match(text)
    if match is None:
        raise ValueError(f"unparseable time string: {text!r}")
    value, unit = match.groups()
    return round(float(value) * _UNIT_TO_PS[unit])


def format_time(ps: int) -> str:
    """Render picoseconds with the largest unit that keeps 3+ digits sane.

    >>> format_time(1_500_000)
    '1.5us'
    >>> format_time(0)
    '0ps'
    """
    if ps == 0:
        return "0ps"
    for unit, scale in (("s", SECONDS), ("ms", MILLISECONDS),
                        ("us", MICROSECONDS), ("ns", NANOSECONDS)):
        if abs(ps) >= scale:
            value = ps / scale
            text = f"{value:.6g}"
            return f"{text}{unit}"
    return f"{ps}ps"


def seconds_to_ps(seconds: float) -> int:
    """Convert float seconds to integer picoseconds (rounded)."""
    return round(seconds * SECONDS)


def ps_to_seconds(ps: int) -> float:
    """Convert integer picoseconds to float seconds."""
    return ps / SECONDS


def rate_to_ps_per_byte(rate_bps: float) -> float:
    """Picoseconds needed to serialise one byte at ``rate_bps``.

    Kept as a float; callers round once per packet via
    :func:`transmission_time_ps` so rounding error never accumulates.

    >>> rate_to_ps_per_byte(10 * GIGABIT)
    800.0
    """
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    return 8 * SECONDS / rate_bps


def transmission_time_ps(size_bytes: int, rate_bps: float) -> int:
    """Serialisation delay of ``size_bytes`` at ``rate_bps``, in ps.

    Rounded to the nearest picosecond; exact for all power-of-ten rates.

    >>> transmission_time_ps(1500, 10 * GIGABIT)
    1200000
    """
    if size_bytes < 0:
        raise ValueError(f"size must be non-negative, got {size_bytes}")
    return round(size_bytes * 8 * SECONDS / rate_bps)


@lru_cache(maxsize=None)
def frame_tx_time_ps(frame_bytes: int, rate_bps: float) -> int:
    """Wire serialisation delay of an L2 frame, memoised.

    ``transmission_time_ps(wire_size(frame_bytes), rate_bps)`` with the
    divide-and-round cached per ``(frame size, rate)``: traffic mixes
    reuse a handful of sizes, and the hot per-packet paths (link sends,
    VOQ drains) would otherwise recompute it millions of times.  The
    cache is process-global, so every link at the same rate shares it.
    """
    from repro.net.packet import wire_size

    return transmission_time_ps(wire_size(frame_bytes), rate_bps)


def bytes_in_interval(rate_bps: float, interval_ps: int) -> int:
    """How many whole bytes a link at ``rate_bps`` carries in ``interval_ps``.

    Used by the analytic buffering model (Figure 1): the burst a port
    must absorb during a switching blackout is exactly the bytes that
    arrive while the switch cannot forward.

    >>> bytes_in_interval(10 * GIGABIT, MILLISECONDS)
    1250000
    """
    if interval_ps < 0:
        raise ValueError(f"interval must be non-negative, got {interval_ps}")
    return int(rate_bps * interval_ps // (8 * SECONDS))
