"""Maximum-weight matching schedulers.

MWM (weight = VOQ occupancy or age) is the throughput-optimal
gold standard for input-queued switches (Tassiulas & Ephremides): it
stabilises every admissible load, at the cost of O(n³) work that is
hopeless at nanosecond cadence but fine as an upper baseline.

Two variants:

* :class:`MwmScheduler` — exact, via the Jonker-Volgenant solver in
  ``scipy.optimize.linear_sum_assignment`` on the negated weight
  matrix.  Zero-demand pairs are pruned from the result so the OCS is
  never configured for circuits nobody wants.
* :class:`GreedyMwmScheduler` — sort edges by weight, add greedily.
  A 1/2-approximation that hardware can pipeline (compare-and-sweep
  networks); the quality/cost trade-off E7 quantifies.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.schedulers.base import Scheduler, ScheduleResult
from repro.schedulers.matching import Matching


class MwmScheduler(Scheduler):
    """Exact maximum-weight matching on the demand matrix."""

    name = "mwm"

    def compute(self, demand: np.ndarray) -> ScheduleResult:
        return self._solve(self._check_demand(demand))

    def compute_trusted(self, demand: np.ndarray) -> ScheduleResult:
        # Feed scipy the same float64 matrix _check_demand would have
        # produced so the solver tie-breaks identically on both paths.
        return self._solve(np.asarray(demand, dtype=np.float64))

    def _solve(self, demand: np.ndarray) -> ScheduleResult:
        n = self.n_ports
        # linear_sum_assignment minimises, so negate.  It also requires
        # a square matrix and produces a *full* permutation; prune pairs
        # with zero demand afterwards.
        rows, cols = linear_sum_assignment(-demand)
        out_of: List[Optional[int]] = [None] * n
        for inp, out in zip(rows.tolist(), cols.tolist()):
            if demand[inp, out] > 0:
                out_of[inp] = out
        self.last_stats = {"iterations": 1, "matchings": 1}
        return ScheduleResult(matchings=[(Matching(out_of), 0)])


class GreedyMwmScheduler(Scheduler):
    """Greedy 1/2-approximate maximum-weight matching (iLQF-style).

    Edges are visited in decreasing weight; ties break on (src, dst)
    index for determinism.
    """

    name = "greedy-mwm"

    def compute(self, demand: np.ndarray) -> ScheduleResult:
        return self.compute_trusted(self._check_demand(demand))

    def compute_trusted(self, demand: np.ndarray) -> ScheduleResult:
        """Locally-dominant rounds; see the base-class contract.

        Sequential greedy over a *strict* total order (weight
        descending, then (src, dst) ascending) picks exactly the edges
        that are, at some stage, minimal in both their row and their
        column among the edges not yet excluded.  Each round therefore
        matches every edge whose rank is the row **and** column minimum
        simultaneously — the globally smallest remaining rank always
        qualifies, so every round makes progress, and the final matching
        is identical to the edge-at-a-time Python loop this replaces.
        """
        n = self.n_ports
        src_idx, dst_idx = np.nonzero(demand > 0)
        out_of_arr = np.full(n, -1, dtype=np.int64)
        if src_idx.size:
            weights = demand[src_idx, dst_idx]
            # Rank every edge by (weight desc, src asc, dst asc).
            order = np.lexsort((dst_idx, src_idx, -weights))
            rank = np.empty(order.size, dtype=np.int64)
            rank[order] = np.arange(order.size)
            blocked = order.size  # sentinel above every real rank
            ranks = np.full((n, n), blocked, dtype=np.int64)
            ranks[src_idx, dst_idx] = rank
            ports = np.arange(n)
            while True:
                row_best = ranks.argmin(axis=1)
                row_min = ranks[ports, row_best]
                rows = ports[row_min < blocked]
                if rows.size == 0:
                    break
                col_best = ranks.argmin(axis=0)
                cols = row_best[rows]
                mutual = col_best[cols] == rows
                rows = rows[mutual]
                cols = cols[mutual]
                out_of_arr[rows] = cols
                ranks[rows, :] = blocked
                ranks[:, cols] = blocked
        self.last_stats = {"iterations": 1, "matchings": 1}
        return ScheduleResult(
            matchings=[(Matching.from_output_array(out_of_arr), 0)])


__all__ = ["MwmScheduler", "GreedyMwmScheduler"]
