"""Bench E2 — scheduler-loop latency, software vs hardware (§2 claim)."""

from conftest import run_and_report

from repro.experiments.e2_latency import run_e2


def test_bench_e2_loop_latency(benchmark):
    report = run_and_report(benchmark, run_e2)
    assert report.data["sw_helios_ps"] > 500_000_000       # ms-class
    assert report.data["hw_fpga_ps"] < 10_000_000          # < 10 us
    assert report.data["sw_helios_ps"] / report.data["hw_fpga_ps"] > 1_000
