"""Destination-selection patterns shared by all traffic sources.

A :class:`DestinationChooser` maps "this host wants to send a packet"
to a destination port.  The three classics:

* **uniform** — each packet to a uniformly random other host; the
  benign, EPS-friendly pattern;
* **permutation** — every host talks to one fixed partner; the pattern
  circuit switches love (one circuit serves everything);
* **hotspot** — a skewed mix: with probability ``skew`` the packet goes
  to the host's designated hot partner, otherwise uniform.  Sweeping
  ``skew`` from 0 to 1 interpolates between the two worlds — E6's axis.
"""

from __future__ import annotations

import abc
import random
from typing import Optional

from repro.sim.errors import ConfigurationError


class DestinationChooser(abc.ABC):
    """Chooses a destination port for each packet from ``src``."""

    def __init__(self, n_ports: int, src: int) -> None:
        if not 0 <= src < n_ports:
            raise ConfigurationError(f"src {src} out of range")
        if n_ports < 2:
            raise ConfigurationError("need >= 2 ports")
        self.n_ports = n_ports
        self.src = src

    @abc.abstractmethod
    def choose(self) -> int:
        """Destination for the next packet (never equal to ``src``)."""


class UniformDestination(DestinationChooser):
    """Uniformly random over all hosts except the source."""

    def __init__(self, n_ports: int, src: int,
                 rng: Optional[random.Random] = None) -> None:
        super().__init__(n_ports, src)
        self.rng = rng or random.Random(src)

    def choose(self) -> int:
        dst = self.rng.randrange(self.n_ports - 1)
        return dst if dst < self.src else dst + 1


class FixedDestination(DestinationChooser):
    """Every packet to one fixed destination."""

    def __init__(self, n_ports: int, src: int, dst: int) -> None:
        super().__init__(n_ports, src)
        if dst == src or not 0 <= dst < n_ports:
            raise ConfigurationError(
                f"fixed destination {dst} invalid for src {src}")
        self.dst = dst

    def choose(self) -> int:
        return self.dst


class PermutationDestination(FixedDestination):
    """The cyclic-shift permutation partner: ``(src + shift) mod n``."""

    def __init__(self, n_ports: int, src: int, shift: int = 1) -> None:
        if shift % n_ports == 0:
            raise ConfigurationError("shift must not be a multiple of n")
        super().__init__(n_ports, src, (src + shift) % n_ports)


class HotspotDestination(DestinationChooser):
    """Skewed chooser: hot partner with probability ``skew``, else uniform.

    ``skew = 0`` degenerates to uniform, ``skew = 1`` to permutation.
    """

    def __init__(self, n_ports: int, src: int, skew: float,
                 hot_dst: Optional[int] = None,
                 rng: Optional[random.Random] = None) -> None:
        super().__init__(n_ports, src)
        if not 0.0 <= skew <= 1.0:
            raise ConfigurationError(f"skew must be in [0, 1], got {skew}")
        self.skew = skew
        self.hot_dst = ((src + 1) % n_ports if hot_dst is None else hot_dst)
        if self.hot_dst == src:
            raise ConfigurationError("hot destination equals source")
        self.rng = rng or random.Random(src)
        self._uniform = UniformDestination(n_ports, src, self.rng)

    def choose(self) -> int:
        if self.rng.random() < self.skew:
            return self.hot_dst
        return self._uniform.choose()


__all__ = [
    "DestinationChooser",
    "UniformDestination",
    "FixedDestination",
    "PermutationDestination",
    "HotspotDestination",
]
