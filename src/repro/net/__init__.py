"""Network substrate: packets, flows, links, hosts, classification.

These are the pieces of Figure 2 that sit *outside* the scheduler: the
hosts H1..Hn that source traffic, the links that carry it, and the flow
classification that the processing logic applies on ingress.
"""

from repro.net.addressing import NodeId, PortId
from repro.net.classifier import ClassifierRule, FlowClassifier
from repro.net.flow import FiveTuple, FlowKey
from repro.net.host import Host, HostBufferMode
from repro.net.link import Link
from repro.net.packet import (
    ETHERNET_OVERHEAD_BYTES,
    MAX_FRAME_BYTES,
    MIN_FRAME_BYTES,
    Packet,
    wire_size,
)
from repro.net.topology import HybridRackTopology, build_rack

__all__ = [
    "NodeId",
    "PortId",
    "Packet",
    "wire_size",
    "MIN_FRAME_BYTES",
    "MAX_FRAME_BYTES",
    "ETHERNET_OVERHEAD_BYTES",
    "FiveTuple",
    "FlowKey",
    "Link",
    "Host",
    "HostBufferMode",
    "ClassifierRule",
    "FlowClassifier",
    "HybridRackTopology",
    "build_rack",
]
