"""Scalar executable specs for the vectorized analysis kernels.

These are the original per-sample loops, kept verbatim as the
behavioural contract for :mod:`repro.analysis.metrics` /
:mod:`repro.analysis.stats` — the same discipline as
:mod:`repro.schedulers.reference`.  The fuzz tests in
``tests/test_analysis_vectorized.py`` assert the production kernels
against them; nothing on a hot path should import this module.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def reference_interarrival_jitter_ps(arrival_times_ps: Sequence[int],
                                     period_ps: int) -> float:
    """RFC 3550 smoothed jitter, evaluated as the literal recurrence.

    ``J_i = J_{i-1} + (|D_i| - J_{i-1}) / 16`` with ``D_i`` the
    deviation of the i-th interarrival from the nominal period —
    exactly as an RTP receiver updates it, one packet at a time.
    """
    if len(arrival_times_ps) < 2:
        return 0.0
    jitter = 0.0
    previous = arrival_times_ps[0]
    for arrival in arrival_times_ps[1:]:
        deviation = abs((arrival - previous) - period_ps)
        jitter += (deviation - jitter) / 16.0
        previous = arrival
    return float(jitter)


def reference_truncate_warmup(
        values: Sequence[float],
        max_fraction: float = 0.5) -> Tuple[int, List[float]]:
    """MSER-lite warmup truncation as the literal O(n²) search.

    For every candidate cut the remaining tail's ``var / size`` score
    is recomputed from scratch; the best (first-minimal) cut wins.
    """
    import numpy as np

    data = np.asarray(values, dtype=np.float64)
    if data.size < 4:
        return 0, list(data)
    best_cut = 0
    best_score = float("inf")
    limit = int(data.size * max_fraction)
    for cut in range(0, limit + 1):
        tail = data[cut:]
        if tail.size < 2:
            break
        score = float(tail.var(ddof=0)) / tail.size
        if score < best_score:
            best_score = score
            best_cut = cut
    return best_cut, list(data[best_cut:])


__all__ = [
    "reference_interarrival_jitter_ps",
    "reference_truncate_warmup",
]
