"""Quick-mode runs of the remaining end-to-end experiments.

Separated from test_experiments.py so the heavier framework-driving
experiments (E3, E4, E8) can be deselected with ``-k "not slow_exp"``
during rapid iteration; they still run in the default suite.
"""

import pytest

from repro.experiments.e3_utilization import run_e3
from repro.experiments.e4_jitter import run_e4
from repro.experiments.e8_sync import run_e8


class TestE3SlowExp:
    @pytest.fixture(scope="class")
    def report(self):
        return run_e3(quick=True)

    def test_utilisation_falls_with_epoch(self, report):
        utils = report.data["utilisation"]
        assert utils[0] > utils[-1]

    def test_grant_ordering_ablation(self, report):
        ablation = report.data["ablation"]
        assert ablation["optimistic"]["drops"] > \
            ablation["ordered"]["drops"]


class TestE4SlowExp:
    @pytest.fixture(scope="class")
    def report(self):
        return run_e4(quick=True)

    def test_slow_scheduling_hurts_p99(self, report):
        assert report.data["slow"]["p99_ps"] > \
            5 * report.data["fast"]["p99_ps"]

    def test_slow_scheduling_hurts_jitter(self, report):
        assert report.data["slow"]["jitter_ps"] > \
            5 * max(report.data["fast"]["jitter_ps"], 1.0)

    def test_both_regimes_deliver(self, report):
        assert report.data["fast"]["delivered"] > 0
        assert report.data["slow"]["delivered"] > 0


class TestE8SlowExp:
    @pytest.fixture(scope="class")
    def report(self):
        return run_e8(quick=True)

    def test_slow_mode_degrades_with_skew(self, report):
        ratios = report.data["slow_delivery_ratio"]
        assert ratios[-1] < ratios[0]

    def test_fast_mode_flat(self, report):
        ratios = report.data["fast_delivery_ratio"]
        assert max(ratios) - min(ratios) < 0.05
