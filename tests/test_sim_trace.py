"""Tests for counters, time series and probes."""

import pytest

from repro.sim.trace import Counter, Probe, TimeSeries, merge_step_max


class TestCounter:
    def test_starts_at_zero(self):
        c = Counter("x")
        assert c.count == 0 and c.bytes == 0

    def test_add(self):
        c = Counter("x")
        c.add(2, 300)
        c.add()
        assert c.count == 3
        assert c.bytes == 300

    def test_repr_mentions_name(self):
        assert "drops" in repr(Counter("drops"))


class TestTimeSeries:
    def test_record_and_summaries(self):
        s = TimeSeries("s")
        for t, v in [(0, 1.0), (10, 5.0), (20, 3.0)]:
            s.record(t, v)
        assert len(s) == 3
        assert s.max() == 5.0
        assert s.min() == 1.0
        assert s.mean() == 3.0
        assert s.last() == 3.0

    def test_empty_summaries(self):
        s = TimeSeries("s")
        assert s.max() == 0.0
        assert s.mean() == 0.0
        assert s.last() is None

    def test_time_weighted_mean_step_function(self):
        s = TimeSeries("s")
        s.record(0, 0.0)
        s.record(10, 100.0)   # value 0 held for 10
        s.record(20, 0.0)     # value 100 held for 10
        # With end_time 30: 0*10 + 100*10 + 0*10 over 30.
        assert s.time_weighted_mean(end_time=30) == pytest.approx(100 / 3)

    def test_time_weighted_mean_single_sample(self):
        s = TimeSeries("s")
        s.record(5, 7.0)
        assert s.time_weighted_mean() == 7.0

    def test_time_weighted_mean_empty(self):
        assert TimeSeries("s").time_weighted_mean() == 0.0


class TestProbe:
    def test_probe_samples_periodically(self, sim):
        state = {"v": 0.0}
        probe = Probe("p", period_ps=100, sample=lambda: state["v"])
        probe.install(sim)
        sim.schedule(150, lambda: state.update(v=9.0))
        sim.run(until=400)
        assert probe.series.times == [100, 200, 300, 400]
        assert probe.series.values == [0.0, 9.0, 9.0, 9.0]


class TestMergeStepMax:
    def test_peak_of_sum(self):
        a = TimeSeries("a")
        b = TimeSeries("b")
        a.record(0, 1)
        b.record(0, 1)
        a.record(10, 5)
        b.record(12, 4)   # both high simultaneously: 5 + 4
        a.record(20, 0)
        assert merge_step_max([a, b]) == 9

    def test_empty(self):
        assert merge_step_max([TimeSeries("a")]) == 0.0
