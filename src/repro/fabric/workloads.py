"""Admissible cell-arrival rate matrices for the fabric.

Each function returns an n×n matrix of per-slot arrival probabilities
``lambda[i, j]`` with zero diagonal, scaled so that every row and column
sums to at most ``load`` (≤ 1 keeps the workload admissible: no input or
output is oversubscribed, so a perfect scheduler could serve it all).

The four standard test patterns of the crossbar literature:

* **uniform** — spread evenly; easiest, every sensible scheduler
  reaches high throughput.
* **diagonal** — 2/3 of each input's load to one output, 1/3 to the
  next; the classic adversarial pattern where iSLIP-1 visibly trails
  MWM.
* **log-diagonal** — geometrically decaying off-diagonals; skewed but
  less brutal than diagonal.
* **hotspot** — fraction ``skew`` of each row concentrated on one
  output, remainder uniform.
"""

from __future__ import annotations

import numpy as np

from repro.sim.errors import ConfigurationError


def _validate(n_ports: int, load: float) -> None:
    if n_ports < 2:
        raise ConfigurationError("need >= 2 ports")
    if not 0.0 < load <= 1.0:
        raise ConfigurationError(f"load must be in (0, 1], got {load}")


def uniform_rates(n_ports: int, load: float) -> np.ndarray:
    """Evenly spread: lambda[i, j] = load / (n - 1) off-diagonal."""
    _validate(n_ports, load)
    rates = np.full((n_ports, n_ports), load / (n_ports - 1))
    np.fill_diagonal(rates, 0.0)
    return rates


def diagonal_rates(n_ports: int, load: float) -> np.ndarray:
    """Two-destination skew: 2/3 to (i+1), 1/3 to (i+2) (mod n)."""
    _validate(n_ports, load)
    rates = np.zeros((n_ports, n_ports))
    for i in range(n_ports):
        rates[i, (i + 1) % n_ports] = 2.0 * load / 3.0
        rates[i, (i + 2) % n_ports] = load / 3.0
    return rates


def log_diagonal_rates(n_ports: int, load: float) -> np.ndarray:
    """Geometric decay: lambda[i, (i+k) mod n] ∝ 2^{-k}, k = 1..n-1."""
    _validate(n_ports, load)
    weights = np.array([2.0 ** -k for k in range(1, n_ports)])
    weights /= weights.sum()
    rates = np.zeros((n_ports, n_ports))
    for i in range(n_ports):
        for k in range(1, n_ports):
            rates[i, (i + k) % n_ports] = load * weights[k - 1]
    return rates


def hotspot_rates(n_ports: int, load: float,
                  skew: float = 0.5) -> np.ndarray:
    """``skew`` of each row to output (i+1), the rest uniform."""
    _validate(n_ports, load)
    if not 0.0 <= skew <= 1.0:
        raise ConfigurationError(f"skew must be in [0, 1], got {skew}")
    rates = uniform_rates(n_ports, load * (1.0 - skew))
    for i in range(n_ports):
        rates[i, (i + 1) % n_ports] += load * skew
    return rates


def incast_rates(n_ports: int, load: float, hot: int = 0) -> np.ndarray:
    """Many-to-one: every other input sends only to output ``hot``.

    The hot *column* sums to ``load`` (each sender contributes
    ``load / (n - 1)``); every other column is idle.  This is the
    datacenter fan-in pattern — admissible, but the single output is the
    bottleneck, so queues concentrate in one column of VOQs.
    """
    _validate(n_ports, load)
    if not 0 <= hot < n_ports:
        raise ConfigurationError(
            f"hot output must be in [0, {n_ports}), got {hot}")
    rates = np.zeros((n_ports, n_ports))
    share = load / (n_ports - 1)
    for i in range(n_ports):
        if i != hot:
            rates[i, hot] = share
    return rates


def permutation_rates(n_ports: int, load: float,
                      shift: int = 1) -> np.ndarray:
    """All of each input's load to one partner: the circuit-friendly
    extreme (also the easiest possible case for any matcher)."""
    _validate(n_ports, load)
    if shift % n_ports == 0:
        raise ConfigurationError("shift must not be a multiple of n")
    rates = np.zeros((n_ports, n_ports))
    for i in range(n_ports):
        rates[i, (i + shift) % n_ports] = load
    return rates


__all__ = [
    "uniform_rates",
    "diagonal_rates",
    "log_diagonal_rates",
    "hotspot_rates",
    "incast_rates",
    "permutation_rates",
]
