"""Packet model with Ethernet framing accounting.

A :class:`Packet` carries only what the switch models need: identity,
size, endpoints, and the timestamps from which every latency metric is
derived.  Payload bytes are never materialised — the simulator moves
sizes, not data.

Size conventions
----------------

``size`` is the L2 frame size (Ethernet header + payload + FCS), the
number a ToR buffer stores.  :func:`wire_size` adds preamble + inter
frame gap, the number that occupies link time.  The distinction matters:
buffering requirements (Figure 1) count stored bytes, while link
utilisation counts wire bytes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

#: Preamble (7) + SFD (1) + inter-frame gap (12) in bytes.
ETHERNET_OVERHEAD_BYTES = 20
#: Minimum Ethernet frame (64 bytes including FCS).
MIN_FRAME_BYTES = 64
#: Maximum standard Ethernet frame (non-jumbo).
MAX_FRAME_BYTES = 1518

_packet_ids = itertools.count()


def reset_packet_ids() -> None:
    """Reset the global packet id counter (test isolation helper)."""
    global _packet_ids
    _packet_ids = itertools.count()


def wire_size(frame_bytes: int) -> int:
    """Bytes of link time a frame occupies (frame + preamble + IFG)."""
    return frame_bytes + ETHERNET_OVERHEAD_BYTES


@dataclass(slots=True)
class Packet:
    """One simulated frame.

    Attributes
    ----------
    src, dst:
        Source and destination *port* indices on the hybrid switch.
    size:
        L2 frame bytes (64..1518 for standard Ethernet; jumbo allowed
        by models that opt in).
    created_ps:
        Timestamp when the application emitted the packet (flow-control
        delay at the host counts toward latency, as the paper's host
        buffering argument requires).
    flow_id:
        Opaque flow identifier assigned by the traffic generator.
    priority:
        0 = best effort; higher values are latency-sensitive (VOIP).
    enqueued_ps / dequeued_ps / delivered_ps:
        Filled in as the packet crosses the switch; ``None`` until then.
    via:
        Which fabric delivered it: ``"ocs"``, ``"eps"`` or ``None`` when
        still in flight/dropped.
    """

    src: int
    dst: int
    size: int
    created_ps: int
    flow_id: int = 0
    priority: int = 0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    enqueued_ps: Optional[int] = None
    dequeued_ps: Optional[int] = None
    delivered_ps: Optional[int] = None
    via: Optional[str] = None

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"packet size must be positive, got {self.size}")
        if self.src == self.dst:
            raise ValueError(
                f"packet src == dst == {self.src}; rack traffic never "
                "hairpins through the hybrid switch")

    @property
    def latency_ps(self) -> Optional[int]:
        """End-to-end latency (delivery − creation), or None if undelivered."""
        if self.delivered_ps is None:
            return None
        return self.delivered_ps - self.created_ps

    @property
    def queueing_ps(self) -> Optional[int]:
        """Time spent waiting in a VOQ, or ``None`` if not yet dequeued."""
        if self.dequeued_ps is None or self.enqueued_ps is None:
            return None
        return self.dequeued_ps - self.enqueued_ps


__all__ = [
    "Packet",
    "wire_size",
    "reset_packet_ids",
    "ETHERNET_OVERHEAD_BYTES",
    "MIN_FRAME_BYTES",
    "MAX_FRAME_BYTES",
]
