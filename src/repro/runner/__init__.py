"""Parallel experiment orchestration.

The runner turns the experiment suite into an embarrassingly parallel
job system while keeping the paper-reproduction guarantee: every byte
of output is a deterministic function of what was asked for.

Pipeline::

    plan_runs(...)          # sweep -> ordered List[RunSpec]
      └─ shard(...)         # optional: split across CI shards
    execute(specs,          # sequential or warm-worker parallel
            jobs=N,
            cache=ResultCache(dir),   # spec-hash -> report store
            replica_batch=True)       # fuse seed-only replica groups
      └─ merge_outcomes(...)          # back into ExperimentReport

Entry points stay pure (``repro.experiments.ENTRY_POINTS``), so the
executor can run them in worker processes and the cache can address
reports by the spec's content hash.  Parallel execution uses the
persistent warm pool (``repro.runner.pool``): workers import ``repro``
once per process lifetime and stream dynamically chunked job batches,
returning large reports through shared memory.  ``repro run --jobs N``
and ``repro sweep`` are thin CLI frontends over this package.
"""

from repro.runner.cache import ResultCache
from repro.runner.executor import (
    JobRunner,
    RunOutcome,
    WorkerCrashError,
    execute,
    imap_jobs,
    map_jobs,
)
from repro.runner.governance import (
    FAIL_CRASH,
    FAIL_ERROR,
    FAIL_OOM,
    FAIL_QUARANTINED,
    FAIL_TIMEOUT,
    FAILURE_KINDS,
    GovernedFailure,
    ResourceLimits,
)
from repro.runner.manifest import (
    RunManifest,
    merge_outcomes,
    write_json_report,
)
from repro.runner.plan import derive_seed, plan_runs, shard
from repro.runner.pool import WarmWorkerPool, get_pool, shutdown_pools
from repro.runner.spec import RunSpec, canonical_json, jsonable

__all__ = [
    "RunSpec",
    "ResultCache",
    "RunOutcome",
    "JobRunner",
    "RunManifest",
    "WarmWorkerPool",
    "WorkerCrashError",
    "plan_runs",
    "shard",
    "derive_seed",
    "execute",
    "map_jobs",
    "imap_jobs",
    "get_pool",
    "shutdown_pools",
    "merge_outcomes",
    "write_json_report",
    "canonical_json",
    "jsonable",
    "ResourceLimits",
    "GovernedFailure",
    "FAILURE_KINDS",
    "FAIL_CRASH",
    "FAIL_TIMEOUT",
    "FAIL_OOM",
    "FAIL_QUARANTINED",
    "FAIL_ERROR",
]
