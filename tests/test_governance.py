"""Resource governance and self-healing execution, end to end.

The claims under test (the README's reliability matrix rows):

* a job past its wall-clock deadline becomes a typed TIMEOUT row,
  even when it blocks SIGALRM (the supervisor watchdog path);
* a job allocating past its memory ceiling becomes a typed OOM row;
* healthy jobs sharing the sweep are byte-identical to an ungoverned
  run — governance punishes one job, never the batch;
* the taxonomy survives the manifest JSON round-trip and drives the
  sweep exit code;
* the result cache enforces its budget (LRU index, gc, fsck);
* the daemon quarantines specs that fail the same way twice (durably,
  across restarts), sheds load past its queue watermark with a busy
  frame clients back off on, and refuses work on a nearly-full disk.

The probe entry point (``repro.experiments.probe``) exists for these
tests: a diagnostic job whose failure mode is chosen by override.
"""

import collections
import json
import os
import pathlib
import shutil
import threading
import time

import pytest

from repro import experiments
from repro.experiments.base import ExperimentReport
from repro.runner import (
    FAIL_ERROR,
    FAIL_OOM,
    FAIL_QUARANTINED,
    FAIL_TIMEOUT,
    GovernedFailure,
    ResourceLimits,
    ResultCache,
    RunSpec,
    execute,
    get_pool,
    shutdown_pools,
)
from repro.runner.cache import report_to_payload
from repro.runner.executor import RunOutcome
from repro.runner.manifest import RunManifest
from repro.service import (
    ReproDaemon,
    RetryPolicy,
    ServiceBusy,
    ServiceClient,
    ServiceError,
    execute_via_server,
)
from repro.service.journal import JOURNAL_NAME, replay_full


def probe_spec(behavior="ok", seed=0, **overrides):
    overrides = dict(overrides)
    if behavior != "ok":
        overrides["behavior"] = behavior
    return RunSpec("probe", quick=True, seed=seed,
                   overrides=overrides).validate()


def _sleep_forever(_item):
    time.sleep(300)
    return None


@pytest.fixture
def fresh_pools():
    shutdown_pools(force=True)
    yield
    shutdown_pools(force=True)


class TestResourceLimits:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResourceLimits(timeout_s=0)
        with pytest.raises(ValueError):
            ResourceLimits(memory_mb=-1)
        with pytest.raises(ValueError):
            ResourceLimits(timeout_s=1.0, grace=0.5)
        assert not ResourceLimits().enabled
        assert ResourceLimits(timeout_s=1.0).enabled
        assert ResourceLimits(memory_mb=64).memory_bytes \
            == 64 * 1024 * 1024

    def test_payload_round_trip(self):
        limits = ResourceLimits(timeout_s=2.5, memory_mb=128,
                                grace=2.0)
        assert ResourceLimits.from_payload(limits.to_payload()) \
            == limits
        assert ResourceLimits.from_payload(None) is None


class TestGovernedExecution:
    def test_timeout_becomes_typed_row(self, fresh_pools):
        (outcome,) = execute([probe_spec("hang")],
                             limits=ResourceLimits(timeout_s=0.5))
        assert outcome.kind == FAIL_TIMEOUT
        assert "deadline" in outcome.error

    def test_oom_becomes_typed_row(self, fresh_pools):
        (outcome,) = execute([probe_spec("alloc")],
                             limits=ResourceLimits(memory_mb=256))
        assert outcome.kind == FAIL_OOM
        assert "memory" in outcome.error

    def test_healthy_jobs_are_byte_identical(self, fresh_pools):
        baseline = execute([probe_spec("ok")])
        shutdown_pools(force=True)
        governed = execute(
            [probe_spec("ok"), probe_spec("hang"),
             probe_spec("alloc")],
            jobs=2,
            limits=ResourceLimits(timeout_s=0.5, memory_mb=256))
        by_key = {o.spec.key(): o for o in governed}
        ok = by_key[probe_spec("ok").key()]
        assert ok.error is None and ok.kind is None
        assert report_to_payload(ok.report) \
            == report_to_payload(baseline[0].report)
        kinds = {o.kind for o in governed if o.error}
        assert kinds == {FAIL_TIMEOUT, FAIL_OOM}

    def test_watchdog_kills_signal_blocking_job(self, fresh_pools):
        # hang-hard blocks SIGALRM, so the in-worker alarm can never
        # fire; only the supervisor-side watchdog can reclaim it.
        started = time.monotonic()
        (outcome,) = execute([probe_spec("hang-hard")],
                             limits=ResourceLimits(timeout_s=0.5))
        elapsed = time.monotonic() - started
        assert outcome.kind == FAIL_TIMEOUT
        assert "watchdog" in outcome.error
        assert elapsed < 20.0

    def test_governed_failure_is_a_value(self):
        failure = GovernedFailure(kind=FAIL_TIMEOUT, message="late")
        assert failure.kind == FAIL_TIMEOUT


class TestTaxonomyRoundTrip:
    def test_manifest_json_round_trip(self, fresh_pools):
        outcomes = execute(
            [probe_spec("ok"), probe_spec("hang"),
             probe_spec("alloc")],
            limits=ResourceLimits(timeout_s=0.5, memory_mb=256))
        manifest = RunManifest.from_outcomes(outcomes)
        rendered = manifest.render()
        assert "TIMEOUT" in rendered and "OOM" in rendered
        rebuilt = RunManifest.from_payload(
            json.loads(json.dumps(manifest.to_payload())))
        assert [e.kind for e in rebuilt.entries] \
            == [e.kind for e in manifest.entries]
        assert rebuilt.n_failed == 2

    def test_quarantined_kind_round_trips(self):
        report = ExperimentReport(experiment_id="probe",
                                  title="quarantined")
        outcome = RunOutcome(probe_spec("raise"), report,
                             cached=False, elapsed_s=0.0,
                             error="poison", kind=FAIL_QUARANTINED)
        manifest = RunManifest.from_outcomes([outcome])
        rebuilt = RunManifest.from_payload(manifest.to_payload())
        assert rebuilt.entries[0].kind == FAIL_QUARANTINED
        assert "QUARANTINED" in manifest.render()

    def test_crash_kind_round_trips(self, fresh_pools):
        # Two specs so the batch routes through the pool (a lone
        # ungoverned spec runs in-process, where a crash is fatal).
        outcomes = execute([probe_spec("ok"), probe_spec("crash")],
                           jobs=2)
        crashed = outcomes[1]
        assert crashed.error is not None
        assert crashed.kind is not None  # CRASH from the pool
        rebuilt = RunManifest.from_payload(
            RunManifest.from_outcomes(outcomes).to_payload())
        assert rebuilt.entries[1].kind == crashed.kind

    def test_sweep_exit_code_and_json_out(self, fresh_pools,
                                          tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "sweep.json"
        code = main(["sweep", "probe", "--quick",
                     "--job-timeout", "0.5",
                     "--set", "behavior=ok,hang",
                     "--json-out", str(out)])
        assert code == 1  # a typed failure still fails the invocation
        payload = json.loads(out.read_text())
        manifest = RunManifest.from_payload(payload["manifest"])
        kinds = [e.kind for e in manifest.entries]
        assert kinds.count(FAIL_TIMEOUT) == 1
        assert kinds.count(None) == 1
        capsys.readouterr()


class TestCacheGovernance:
    def _fill(self, tmp_path, n=4):
        cache = ResultCache(tmp_path / "cache")
        specs = [probe_spec("ok", seed=seed) for seed in range(n)]
        paths = []
        for position, spec in enumerate(specs):
            report = ExperimentReport(
                experiment_id="probe", title=f"r{position}",
                data={"seed": spec.seed})
            path = cache.store(spec, report)
            # Deterministic, well-separated LRU ages.
            age = (position + 1) * 100
            os.utime(path, (age, age))
            paths.append(path)
        return cache, specs, paths

    def test_index_is_coldest_first(self, tmp_path):
        cache, _, paths = self._fill(tmp_path)
        assert [e.path for e in cache.index()] == paths

    def test_hit_rewarms_entry(self, tmp_path):
        cache, specs, paths = self._fill(tmp_path)
        assert cache.load(specs[0]) is not None
        # The hit bumped entry 0's mtime past the others.
        assert cache.index()[-1].path == paths[0]

    def test_gc_evicts_cold_keeps_warm(self, tmp_path):
        cache, specs, paths = self._fill(tmp_path)
        sizes = [e.size_bytes for e in cache.index()]
        target = sum(sizes[2:])  # room for exactly the 2 warmest
        evicted, freed = cache.gc(target_bytes=target)
        assert evicted == 2 and freed == sum(sizes[:2])
        assert {e.path for e in cache.index()} == set(paths[2:])
        # The survivors are digest-valid warm entries, all served.
        for spec in specs[2:]:
            assert cache.load(spec) is not None

    def test_gc_under_target_is_a_noop(self, tmp_path):
        cache, _, _ = self._fill(tmp_path)
        assert cache.gc(target_bytes=cache.total_bytes()) == (0, 0)

    def test_gc_requires_a_target(self, tmp_path):
        cache, _, _ = self._fill(tmp_path)
        with pytest.raises(ValueError):
            cache.gc()

    def test_budget_accounting(self, tmp_path):
        cache, _, _ = self._fill(tmp_path)
        total = cache.total_bytes()
        budgeted = ResultCache(cache.root, budget_bytes=total - 1)
        assert budgeted.over_budget() == 1
        budgeted.gc()
        assert budgeted.over_budget() == 0

    def test_verify_evicts_corruption(self, tmp_path):
        cache, specs, paths = self._fill(tmp_path)
        # Bit-flip one payload and copy another into a wrong slot.
        corrupt = paths[0]
        corrupt.write_text(
            corrupt.read_text().replace('"r0"', '"rX"'))
        misplaced = paths[1].with_name("0" * 24 + ".json")
        misplaced.write_text(paths[1].read_text())
        valid, evicted = cache.verify()
        assert valid == 3 and evicted == 2
        assert not corrupt.exists() and not misplaced.exists()

    def test_cache_cli(self, tmp_path, capsys):
        from repro.cli import main

        cache, _, _ = self._fill(tmp_path)
        root = str(cache.root)
        assert main(["cache", "stats", "--cache-dir", root,
                     "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 4
        assert stats["total_bytes"] == cache.total_bytes()
        assert main(["cache", "verify", "--cache-dir", root,
                     "--json"]) == 0
        assert json.loads(capsys.readouterr().out) \
            == {"valid": 4, "evicted": 0}
        assert main(["cache", "gc", "--cache-dir", root,
                     "--target-mb", "0", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["evicted"] == 4
        assert main(["cache", "gc", "--cache-dir", root]) == 2
        capsys.readouterr()


@pytest.fixture
def start_daemon(tmp_path):
    """Factory: a live daemon thread on an ephemeral TCP port."""
    running = []

    def start(**kwargs):
        kwargs.setdefault("jobs", 1)
        kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
        kwargs.setdefault("quiet", True)
        daemon = ReproDaemon("127.0.0.1:0", **kwargs)
        thread = threading.Thread(target=daemon.run, daemon=True)
        thread.start()
        assert daemon.wait_ready(10), "daemon never bound"
        running.append((daemon, thread))
        return daemon

    yield start
    for daemon, thread in running:
        daemon.request_shutdown()
        thread.join(timeout=15)
        assert not thread.is_alive(), "daemon failed to drain"


@pytest.fixture
def failing_experiment(monkeypatch):
    """A gated entry point that raises until told otherwise
    (in-process, so the jobs=1 daemon shares its state)."""

    class Failing:
        def __init__(self):
            self.calls = collections.Counter()
            self.healthy = False
            self.gate = threading.Event()
            self.gate.set()
            self.entered = threading.Event()

        def __call__(self, config):
            self.calls[config.seed] += 1
            self.entered.set()
            assert self.gate.wait(timeout=30), "test forgot the gate"
            if not self.healthy:
                raise RuntimeError("kaboom")
            return ExperimentReport(experiment_id="epoison",
                                    title="recovered",
                                    data={"seed": config.seed})

        def spec(self, seed=0):
            return RunSpec("epoison", seed=seed)

    fake = Failing()
    monkeypatch.setitem(experiments.ENTRY_POINTS, "epoison", fake)
    return fake


def _outcome(address, spec):
    with ServiceClient(address) as client:
        for _, outcome in client.submit_stream([spec]):
            return outcome


class TestQuarantine:
    def test_same_failure_twice_quarantines(self, start_daemon,
                                            failing_experiment):
        daemon = start_daemon()
        spec = failing_experiment.spec()
        first = _outcome(daemon.bound_address, spec)
        assert first.error and first.kind == FAIL_ERROR
        second = _outcome(daemon.bound_address, spec)
        assert second.error and second.kind == FAIL_ERROR
        # A third submission never reaches the entry point.
        third = _outcome(daemon.bound_address, spec)
        assert third.kind == FAIL_QUARANTINED
        assert "quarantined" in third.error
        assert failing_experiment.calls[0] == 2
        with ServiceClient(daemon.bound_address) as client:
            stats = client.stats()
        assert stats["quarantined"] == 1
        assert stats["quarantine_hits"] == 1
        assert stats["quarantined_keys"] == 1

    def test_quarantine_survives_restart(self, start_daemon,
                                         failing_experiment,
                                         tmp_path):
        cache_dir = tmp_path / "cache"
        daemon = start_daemon(cache_dir=str(cache_dir))
        spec = failing_experiment.spec()
        for _ in range(2):
            _outcome(daemon.bound_address, spec)
        # The quarantine record is fsync'd at quarantine time, before
        # any drain: a crashed daemon's journal already carries it.
        live, quarantined = replay_full(cache_dir / JOURNAL_NAME)
        assert spec.key() in quarantined
        # Simulate the crash: a fresh daemon resuming from a copy of
        # the journal as it stands right now (a *clean* drain is
        # campaign-scoped and would wipe the quarantine on purpose).
        crashed = tmp_path / "crashed-cache"
        shutil.copytree(cache_dir, crashed)
        reborn = start_daemon(cache_dir=str(crashed))
        verdict = _outcome(reborn.bound_address, spec)
        assert verdict.kind == FAIL_QUARANTINED
        assert failing_experiment.calls[0] == 2  # never re-ran

    def test_success_clears_failure_history(self, start_daemon,
                                            failing_experiment):
        daemon = start_daemon(cache_dir="")
        spec = failing_experiment.spec()
        assert _outcome(daemon.bound_address, spec).error
        failing_experiment.healthy = True
        assert _outcome(daemon.bound_address, spec).error is None
        failing_experiment.healthy = False
        # The counter reset: one more failure is strike one, not two.
        assert _outcome(daemon.bound_address, spec).kind \
            == FAIL_ERROR


class TestAdmissionControl:
    def test_busy_frame_past_watermark(self, start_daemon,
                                       failing_experiment):
        daemon = start_daemon(max_queue=1, busy_retry_s=0.25)
        failing_experiment.healthy = True
        failing_experiment.gate.clear()
        try:
            with ServiceClient(daemon.bound_address) as holder:
                holder.submit([failing_experiment.spec(seed=0)])
                assert failing_experiment.entered.wait(10)
                # An in-flight resubmit coalesces — never refused.
                with ServiceClient(daemon.bound_address) as twin:
                    twin.submit([failing_experiment.spec(seed=0)])
                # A genuinely new key exceeds max_queue=1.
                with ServiceClient(daemon.bound_address) as extra:
                    with pytest.raises(ServiceBusy) as excinfo:
                        extra.submit(
                            [failing_experiment.spec(seed=9)])
                assert excinfo.value.retry_after_s == 0.25
        finally:
            failing_experiment.gate.set()
        with ServiceClient(daemon.bound_address) as client:
            assert client.stats()["busy_rejections"] == 1

    def test_execute_via_server_backs_off_then_errors(
            self, start_daemon, failing_experiment):
        daemon = start_daemon(max_queue=1, busy_retry_s=0.05)
        failing_experiment.healthy = True
        failing_experiment.gate.clear()
        try:
            with ServiceClient(daemon.bound_address) as holder:
                holder.submit([failing_experiment.spec(seed=0)])
                assert failing_experiment.entered.wait(10)
                policy = RetryPolicy(max_attempts=2,
                                     base_delay_s=0.01,
                                     max_delay_s=0.1, jitter=0.0)
                started = time.monotonic()
                with pytest.raises(ServiceError,
                                   match="stayed busy"):
                    execute_via_server(
                        daemon.bound_address,
                        [failing_experiment.spec(seed=7)],
                        retry=policy)
                # It backed off between attempts: two sleeps of at
                # least the daemon's retry_after_s hint each.
                assert time.monotonic() - started >= 0.1
        finally:
            failing_experiment.gate.set()

    def test_disk_full_refusal(self, start_daemon,
                               failing_experiment):
        daemon = start_daemon(min_free_mb=10 ** 9)
        failing_experiment.healthy = True
        with ServiceClient(daemon.bound_address) as client:
            with pytest.raises(ServiceError, match="cache-full"):
                client.submit([failing_experiment.spec()])
            assert client.stats()["disk_refusals"] == 1

    def test_stats_surface_governance_config(self, start_daemon):
        daemon = start_daemon(
            limits=ResourceLimits(timeout_s=30.0), max_queue=7,
            min_free_mb=0)
        with ServiceClient(daemon.bound_address) as client:
            stats = client.stats()
        assert stats["max_queue"] == 7
        assert stats["governed"] is True
        assert stats["quarantined_keys"] == 0


class TestGovernedViaServer:
    def test_typed_rows_cross_the_wire(self, start_daemon,
                                       fresh_pools):
        # A governed daemon: hang and alloc probes settle as typed
        # rows, the healthy probe's report is byte-identical to a
        # local ungoverned run.
        daemon = start_daemon(
            limits=ResourceLimits(timeout_s=0.5, memory_mb=256))
        specs = [probe_spec("ok"), probe_spec("hang"),
                 probe_spec("alloc")]
        outcomes = execute_via_server(daemon.bound_address, specs)
        by_behavior = dict(zip(["ok", "hang", "alloc"], outcomes))
        assert by_behavior["hang"].kind == FAIL_TIMEOUT
        assert by_behavior["alloc"].kind == FAIL_OOM
        shutdown_pools(force=True)
        baseline = execute([probe_spec("ok")])
        assert report_to_payload(by_behavior["ok"].report) \
            == report_to_payload(baseline[0].report)


class TestBoundedShutdown:
    def test_shutdown_with_hung_worker_is_bounded(self, fresh_pools):
        pool = get_pool(2)
        consumer = threading.Thread(
            target=lambda: list(pool.imap(_sleep_forever, [0, 1],
                                          chunk_size=1)),
            daemon=True)
        consumer.start()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if pool._task_started:  # workers picked up the chunks
                break
            time.sleep(0.02)
        started = time.monotonic()
        pool.shutdown(force=True)
        assert time.monotonic() - started < 12.0
        assert all(not p.is_alive() for p in pool._procs)
