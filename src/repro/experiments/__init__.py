"""Experiment implementations, one module per paper artifact.

Each experiment returns an :class:`~repro.experiments.base.ExperimentReport`
holding the same rows/series the paper's figure or claim carries.  The
``benchmarks/`` tree and the ``repro`` CLI both call these functions, so
numbers in EXPERIMENTS.md, bench output and ad hoc runs always agree.

========  ==========================================================
E1        Figure 1 — buffering requirement vs switching time
E2        §2 — scheduler loop latency, software vs hardware
E3        §1/§2 — utilisation vs scheduling period
E4        §2 — VOIP latency/jitter under slow vs fast scheduling
E5        §3 — scheduling-algorithm study on the cell fabric
E6        §1 — OCS offload fraction vs demand skew
E7        §2 — schedule-computation scalability with port count
E8        §2 — sensitivity to host–switch clock skew
========  ==========================================================
"""

import sys
from typing import Dict

from repro.experiments import (
    e1_buffering,
    e2_latency,
    e3_utilization,
    e4_jitter,
    e5_algorithms,
    e6_offload,
    e7_scalability,
    e8_sync,
    probe,
)
from repro.experiments.base import ExperimentConfig, ExperimentReport
from repro.experiments.e1_buffering import run_e1
from repro.experiments.e2_latency import run_e2
from repro.experiments.e3_utilization import run_e3
from repro.experiments.e4_jitter import run_e4
from repro.experiments.e5_algorithms import run_e5
from repro.experiments.e6_offload import run_e6
from repro.experiments.e7_scalability import run_e7
from repro.experiments.e8_sync import run_e8

#: Historical entry points: ``fn(quick=...)``, kept for direct callers.
EXPERIMENTS = {
    "e1": run_e1,
    "e2": run_e2,
    "e3": run_e3,
    "e4": run_e4,
    "e5": run_e5,
    "e6": run_e6,
    "e7": run_e7,
    "e8": run_e8,
}

#: Pure entry points: ``fn(config: ExperimentConfig)``.  These are what
#: ``repro.runner`` executes — deterministic functions of the config,
#: safe to run in worker processes and to cache by content hash.
ENTRY_POINTS = {
    "e1": e1_buffering.run,
    "e2": e2_latency.run,
    "e3": e3_utilization.run,
    "e4": e4_jitter.run,
    "e5": e5_algorithms.run,
    "e6": e6_offload.run,
    "e7": e7_scalability.run,
    "e8": e8_sync.run,
    # Fault injector for the resource-governance tests and CI drills.
    # ENTRY_POINTS only: absent from EXPERIMENTS so ``run all`` (which
    # expands from that table) never executes it by accident.
    "probe": probe.run,
}

#: Replica-batch entry points: ``fn(configs) -> [report, ...]``, one
#: report per config, **byte-identical** to calling the pure entry
#: point per config.  Configs in one call differ only in ``seed``; the
#: experiment simulates the whole replica axis in one pass
#: (``repro.fabric.replicas``).  Opt-in per experiment — the runner's
#: ``replica_batch`` mode falls back to per-spec execution for any
#: experiment not listed here.
BATCH_ENTRY_POINTS = {
    "e5": e5_algorithms.run_batch,
}


def experiment_summaries() -> Dict[str, str]:
    """``id -> one-line description`` from each module's docstring."""
    summaries = {}
    for exp_id, fn in sorted(ENTRY_POINTS.items()):
        doc = sys.modules[fn.__module__].__doc__ or ""
        summaries[exp_id] = doc.strip().splitlines()[0].rstrip(".")
    return summaries


__all__ = ["EXPERIMENTS", "ENTRY_POINTS", "BATCH_ENTRY_POINTS",
           "experiment_summaries", "ExperimentConfig",
           "ExperimentReport"] + [f"run_e{i}" for i in range(1, 9)]
