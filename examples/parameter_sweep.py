"""Parameter sweeps through the runner: plan, execute, aggregate.

The CLI equivalent of this script is::

    repro sweep e5 --quick --replicas 2 --base-seed 1 \
        --set n_ports=8,16 --jobs 2 --cache-dir .repro-cache \
        --replica-batch

but the library API composes: plan a grid, shard it, execute each
shard (here sequentially — in CI each shard would be its own matrix
job sharing the cache directory), and merge everything back into one
``ExperimentReport``.

``replica_batch=True`` below is the sweep-throughput fast path: the
two seeded replicas of each grid point are fused into one job that
simulates both seeds at once through the vectorised replica kernel
(``repro.fabric.replicas``).  Reports — and therefore cache entries
and merged output — are byte-identical to per-replica execution, so
the flag is purely a wall-clock choice.  ``--jobs N`` composes with
it: jobs run on a persistent warm-worker pool, so repeated sweeps in
one process pay no spawn or import cost.
"""

import tempfile

from repro.runner import (
    ResultCache,
    execute,
    merge_outcomes,
    plan_runs,
    shard,
)

# Plan: e5's scheduler study on two fabric sizes, two seeded replicas
# each — four independent jobs, deterministically ordered and keyed.
specs = plan_runs(
    ["e5"],
    quick=True,
    base_seed=1,
    replicas=2,
    grid={"n_ports": [8, 16], "loads": [[0.3, 0.8]]},
)
print("plan:")
for spec in specs:
    print(f"  {spec.key()}  {spec.describe()}")

with tempfile.TemporaryDirectory() as cache_dir:
    cache = ResultCache(cache_dir)

    # Shard the plan as a CI matrix would, then run every shard.
    # Striped sharding keeps per-shard cost balanced; the shared cache
    # means a re-dispatched shard re-executes nothing.
    outcomes = []
    for shard_index in range(2):
        part = shard(specs, 2, shard_index)
        outcomes.extend(execute(part, jobs=2, cache=cache,
                                replica_batch=True))

    # Merge shard outputs back into the familiar report shape.
    merged = merge_outcomes(outcomes, title="e5 across fabric sizes")
    print()
    print(merged.render())

    # Per-job data is keyed by spec hash, e.g. peak throughput of the
    # diagonal workload at the heaviest load for every job:
    print()
    for spec in specs:
        data = merged.data[spec.key()]["data"]
        heaviest = data["diagonal"]["mwm"][-1]
        print(f"{spec.describe():40s} "
              f"mwm diagonal@{heaviest[0]}: {heaviest[1]:.3f}")
