"""Demand estimation — the first stage of the scheduling loop.

"The scheduling logic processes the incoming requests, estimates the
demand matrix, and runs the scheduling algorithm" (§3).  Demand
estimation quality and *speed* are exactly where the paper claims
hardware wins: counters and sketches update at line rate in an FPGA,
while software schedulers poll hosts over the network.

Three estimators, in increasing hardware realism:

* :class:`InstantEstimator` — the true current VOQ occupancy.  What an
  on-chip scheduler with direct queue visibility sees; zero error.
* :class:`EwmaEstimator` — exponentially weighted moving average over
  periodic snapshots.  What c-Through-style systems compute from host
  socket-buffer occupancy; smooths bursts, lags shifts.
* :class:`SketchEstimator` — a count-min sketch over per-packet
  observations.  What a switch without per-pair counters would use;
  over-estimates under hash collisions, never under-estimates.

All estimators expose the same protocol: ``observe`` per-packet
increments, ``snapshot`` bulk occupancy updates, ``estimate`` the
current n×n matrix, and ``reset_epoch`` for epoch-based schemes.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.sim.errors import ConfigurationError


class DemandEstimator(abc.ABC):
    """Common estimator interface (see module docstring)."""

    def __init__(self, n_ports: int) -> None:
        if n_ports < 2:
            raise ConfigurationError("estimators need >= 2 ports")
        self.n_ports = n_ports

    @abc.abstractmethod
    def observe(self, src: int, dst: int, nbytes: int) -> None:
        """Record ``nbytes`` of new demand from ``src`` to ``dst``."""

    @abc.abstractmethod
    def snapshot(self, occupancy: np.ndarray) -> None:
        """Feed a full occupancy matrix (e.g. VOQ bytes) as one sample."""

    @abc.abstractmethod
    def estimate(self) -> np.ndarray:
        """Current demand estimate (float64 n×n, zero diagonal)."""

    def reset_epoch(self) -> None:
        """Clear per-epoch accumulation (default: no-op)."""


class InstantEstimator(DemandEstimator):
    """Pass-through of the most recent snapshot plus live increments.

    Models a hardware scheduler with direct VOQ visibility: the estimate
    is exact at the instant the schedule computation starts.
    """

    def __init__(self, n_ports: int) -> None:
        super().__init__(n_ports)
        self._matrix = np.zeros((n_ports, n_ports), dtype=np.float64)

    def observe(self, src: int, dst: int, nbytes: int) -> None:
        self._matrix[src, dst] += nbytes

    def snapshot(self, occupancy: np.ndarray) -> None:
        np.copyto(self._matrix, occupancy)

    def estimate(self) -> np.ndarray:
        return self._matrix.copy()


class EwmaEstimator(DemandEstimator):
    """Exponentially weighted moving average over snapshots.

    ``alpha`` is the weight of the newest snapshot; c-Through used a
    long-memory filter (small alpha) to stabilise circuit decisions at
    the cost of reacting slowly — the trade-off E6 ablates.
    """

    def __init__(self, n_ports: int, alpha: float = 0.25) -> None:
        super().__init__(n_ports)
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._ewma = np.zeros((n_ports, n_ports), dtype=np.float64)
        self._pending = np.zeros((n_ports, n_ports), dtype=np.float64)
        self._primed = False

    def observe(self, src: int, dst: int, nbytes: int) -> None:
        self._pending[src, dst] += nbytes

    def snapshot(self, occupancy: np.ndarray) -> None:
        sample = np.asarray(occupancy, dtype=np.float64) + self._pending
        self._pending[:] = 0.0
        if not self._primed:
            # First sample primes the filter; starting from zero would
            # bias early schedules toward "no demand".
            np.copyto(self._ewma, sample)
            self._primed = True
            return
        self._ewma *= 1.0 - self.alpha
        self._ewma += self.alpha * sample

    def estimate(self) -> np.ndarray:
        return self._ewma.copy()

    def reset_epoch(self) -> None:
        self._pending[:] = 0.0


class CountMinSketch:
    """Count-min sketch over (src, dst) keys.

    ``depth`` rows of ``width`` counters with pairwise-independent
    hashes.  Point queries return the minimum over rows: an upper bound
    on the true count, exact when no collisions occurred.  This is the
    classic line-rate-friendly structure an FPGA demand estimator would
    use when per-pair counters don't fit.
    """

    #: Large prime for the universal-hash family.
    _PRIME = (1 << 61) - 1

    def __init__(self, width: int, depth: int, seed: int = 0) -> None:
        if width < 1 or depth < 1:
            raise ConfigurationError("sketch width and depth must be >= 1")
        self.width = width
        self.depth = depth
        rng = np.random.default_rng(seed)
        # h_i(x) = ((a_i * x + b_i) mod P) mod width, a_i != 0.
        self._a = rng.integers(1, self._PRIME, size=depth, dtype=np.int64)
        self._b = rng.integers(0, self._PRIME, size=depth, dtype=np.int64)
        self._table = np.zeros((depth, width), dtype=np.int64)

    def _rows(self, key: int) -> np.ndarray:
        hashed = (self._a * key + self._b) % self._PRIME
        return (hashed % self.width).astype(np.intp)

    def add(self, key: int, amount: int) -> None:
        """Increment ``key`` by ``amount``."""
        cols = self._rows(key)
        self._table[np.arange(self.depth), cols] += amount

    def query(self, key: int) -> int:
        """Upper-bound estimate of the total added for ``key``."""
        cols = self._rows(key)
        return int(self._table[np.arange(self.depth), cols].min())

    def reset(self) -> None:
        """Zero every counter."""
        self._table[:] = 0


class SketchEstimator(DemandEstimator):
    """Demand estimation from a :class:`CountMinSketch` per epoch.

    Observations accumulate in the sketch; :meth:`estimate` reconstructs
    the n×n matrix by point queries (cheap: n² queries over a tiny key
    space).  ``snapshot`` is accepted but ignored — a sketch-based
    design has no occupancy visibility, only the packet stream.
    """

    def __init__(self, n_ports: int, width: Optional[int] = None,
                 depth: int = 4, seed: int = 0) -> None:
        super().__init__(n_ports)
        if width is None:
            # Default: half the exact-counter budget, to exercise
            # collisions in experiments while staying accurate-ish.
            width = max(8, (n_ports * n_ports) // 2)
        self.sketch = CountMinSketch(width, depth, seed)

    def _key(self, src: int, dst: int) -> int:
        return src * self.n_ports + dst

    def observe(self, src: int, dst: int, nbytes: int) -> None:
        self.sketch.add(self._key(src, dst), nbytes)

    def snapshot(self, occupancy: np.ndarray) -> None:
        """Ignored: sketches see packets, not queues."""

    def estimate(self) -> np.ndarray:
        matrix = np.zeros((self.n_ports, self.n_ports), dtype=np.float64)
        for src in range(self.n_ports):
            for dst in range(self.n_ports):
                if src != dst:
                    matrix[src, dst] = self.sketch.query(self._key(src, dst))
        return matrix

    def reset_epoch(self) -> None:
        self.sketch.reset()


__all__ = [
    "DemandEstimator",
    "InstantEstimator",
    "EwmaEstimator",
    "SketchEstimator",
    "CountMinSketch",
]
