"""Vectorized analysis kernels vs their scalar executable specs.

Mirrors ``tests/test_schedulers_vectorized.py``: the production kernels
in :mod:`repro.analysis.metrics` / :mod:`repro.analysis.stats` are
fuzz-matched against the preserved per-sample loops in
:mod:`repro.analysis.reference`, including the degenerate shapes the
issue calls out (empty, single-sample, all-equal timestamps).
"""

import numpy as np
import pytest

from repro.analysis.metrics import (
    JITTER_VECTOR_MIN,
    interarrival_jitter_ps,
    latency_summary,
    latency_summary_from_arrays,
    percentile,
    percentiles,
)
from repro.analysis.reference import (
    reference_interarrival_jitter_ps,
    reference_truncate_warmup,
)
from repro.analysis.stats import batch_means_ci, truncate_warmup
from repro.net.packet import Packet


class TestJitterVectorized:
    def test_empty_and_single_sample(self):
        assert interarrival_jitter_ps([], 100) == 0.0
        assert interarrival_jitter_ps([5], 100) == 0.0
        assert interarrival_jitter_ps(np.array([], dtype=np.int64),
                                      100) == 0.0
        assert interarrival_jitter_ps(np.array([7], dtype=np.int64),
                                      100) == 0.0

    def test_all_equal_timestamps(self):
        arrivals = np.zeros(10_000, dtype=np.int64)
        vector = interarrival_jitter_ps(arrivals, 1_000)
        spec = reference_interarrival_jitter_ps(arrivals.tolist(), 1_000)
        assert vector == pytest.approx(spec, rel=1e-12)

    def test_below_threshold_is_bit_identical(self):
        rng = np.random.default_rng(3)
        arrivals = np.cumsum(
            rng.integers(1, 2_000_000, JITTER_VECTOR_MIN - 1))
        assert interarrival_jitter_ps(arrivals, 1_000_000) == \
            reference_interarrival_jitter_ps(arrivals.tolist(),
                                             1_000_000)

    @pytest.mark.parametrize("seed", range(6))
    def test_fuzz_matches_scalar_spec(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(JITTER_VECTOR_MIN, 60_000))
        period = int(rng.integers(1, 3_000_000))
        gaps = rng.integers(0, 2 * period + 1, size=n)
        arrivals = np.cumsum(gaps).astype(np.int64)
        vector = interarrival_jitter_ps(arrivals, period)
        spec = reference_interarrival_jitter_ps(arrivals.tolist(),
                                                period)
        assert vector == pytest.approx(spec, rel=1e-9, abs=1e-9)

    def test_spec_equals_historical_loop_on_lists(self):
        # The reference really is the pre-vectorization code: same
        # result from a plain list as from an int64 column view.
        arrivals = [0, 90, 210, 290, 400, 530]
        as_list = reference_interarrival_jitter_ps(arrivals, 100)
        as_col = interarrival_jitter_ps(
            np.asarray(arrivals, dtype=np.int64), 100)
        assert as_list == as_col


class TestTruncateWarmupVectorized:
    def test_degenerate_shapes(self):
        assert truncate_warmup([]) == (0, [])
        assert truncate_warmup([1.0]) == (0, [1.0])
        assert truncate_warmup([2.0, 2.0, 2.0]) == (0, [2.0, 2.0, 2.0])

    def test_all_equal_series(self):
        series = [5.0] * 64
        assert truncate_warmup(series) == \
            reference_truncate_warmup(series)

    @pytest.mark.parametrize("seed", range(8))
    def test_fuzz_matches_scalar_spec(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(4, 3_000))
        warm = rng.normal(10.0, 1.0, n)
        if n > 10:
            ramp_len = int(rng.integers(1, n // 2))
            warm[:ramp_len] += np.linspace(rng.uniform(1, 20), 0.0,
                                           ramp_len)
        max_fraction = float(rng.uniform(0.0, 0.9))
        cut, tail = truncate_warmup(warm, max_fraction)
        spec_cut, spec_tail = reference_truncate_warmup(warm,
                                                        max_fraction)
        assert cut == spec_cut
        assert tail == spec_tail

    def test_linear_cost_shape(self):
        # The vectorized form must agree on a series long enough that
        # the O(n²) rescan would visibly stall a test run.
        rng = np.random.default_rng(9)
        series = np.concatenate([
            rng.normal(0.0, 1.0, 1_000) + np.linspace(8.0, 0.0, 1_000),
            rng.normal(0.0, 1.0, 59_000),
        ])
        cut, tail = truncate_warmup(series)
        assert 0 < cut <= 30_000
        assert len(tail) == series.size - cut


class TestPercentiles:
    def test_multi_quantile_bit_identical_to_single(self):
        rng = np.random.default_rng(1)
        for n in (1, 2, 17, 4_096):
            values = rng.integers(0, 10**12, n).astype(np.float64)
            multi = percentiles(values, (50, 95, 99))
            singles = tuple(percentile(values, q) for q in (50, 95, 99))
            assert multi == singles

    def test_empty(self):
        assert percentiles([], (50, 99)) == (0.0, 0.0)

    def test_no_copy_for_float64_columns(self):
        values = np.arange(100, dtype=np.float64)
        # percentile must accept the array without mutating it.
        before = values.copy()
        percentiles(values, (10, 90))
        assert np.array_equal(values, before)


class TestLatencySummaryColumns:
    def test_matches_packet_list_path(self):
        rng = np.random.default_rng(5)
        packets = []
        for i in range(500):
            created = int(rng.integers(0, 10**9))
            packets.append(Packet(
                src=0, dst=1, size=1500, created_ps=created,
                delivered_ps=created + int(rng.integers(1, 10**7))))
        latencies = np.asarray([p.latency_ps for p in packets],
                               dtype=np.int64)
        from_packets = latency_summary(packets)
        from_columns = latency_summary_from_arrays(latencies)
        assert from_packets == from_columns

    def test_empty(self):
        summary = latency_summary_from_arrays(
            np.array([], dtype=np.int64))
        assert summary.count == 0
        assert summary.p99_ps == 0.0


class TestBatchMeansColumns:
    def test_ndarray_input_matches_list_input(self):
        rng = np.random.default_rng(2)
        values = rng.normal(5.0, 1.0, 400)
        as_array = batch_means_ci(values)
        as_list = batch_means_ci(list(values))
        assert as_array == as_list
