"""E6 — OCS offload fraction vs demand skew.

§1: the OCS "is used to serve long bursts of traffic and the EPS is
used to serve the remaining traffic and short bursts".  How much of the
bytes the circuits actually capture depends on demand skew and on the
scheduler; this experiment quantifies it two ways:

* **Decision analysis** — feed synthetic demand matrices of controlled
  skew directly to Solstice and hotspot schedulers and measure what
  fraction of demanded bytes their plans serve with circuits vs divert
  to the EPS residue.  Also ablates the demand estimator (instant vs
  EWMA vs sketch) on the same matrices.
* **End-to-end** — run the framework with hotspot traffic of swept
  skew and report the delivered-byte OCS fraction.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.analysis.tables import render_table
from repro.experiments.base import ExperimentConfig, ExperimentReport
from repro.scenario import Scenario, TrafficPhase
from repro.schedulers.demand import (
    EwmaEstimator,
    InstantEstimator,
    SketchEstimator,
)
from repro.schedulers.eclipse import EclipseScheduler
from repro.schedulers.hotspot import HotspotScheduler
from repro.schedulers.solstice import SolsticeScheduler
from repro.sim.time import GIGABIT, MICROSECONDS, MILLISECONDS

N_PORTS = 8

#: Overrides this experiment honours (``repro run e6 --set ...``).
KNOWN_OVERRIDES = frozenset({"skews", "duration_ps"})


def skewed_demand(n_ports: int, skew: float, total_bytes: float,
                  seed: int = 0) -> np.ndarray:
    """Demand with ``skew`` of each row on one hot partner, rest uniform."""
    rng = np.random.default_rng(seed)
    demand = np.zeros((n_ports, n_ports))
    per_row = total_bytes / n_ports
    for i in range(n_ports):
        hot = (i + 1) % n_ports
        demand[i, hot] += skew * per_row
        cold = (1.0 - skew) * per_row / max(1, n_ports - 2)
        for j in range(n_ports):
            if j not in (i, hot):
                demand[i, j] += cold * (0.5 + rng.random())
    np.fill_diagonal(demand, 0.0)
    return demand


def _served_fraction(scheduler, demand: np.ndarray) -> float:
    """Bytes the plan serves on circuits / total demanded bytes."""
    result = scheduler.compute(demand)
    total = float(demand.sum())
    if total == 0:
        return 1.0
    if result.eps_residue is None:
        served = demand[result.served_matrix()].sum()
        return float(served) / total
    return float((demand - np.minimum(result.eps_residue, demand)).sum()
                 ) / total


def _decision_table(report: ExperimentReport, skews: List[float],
                    demand_seed: int) -> None:
    rows = []
    sol_series = []
    hot_series = []
    ecl_series = []
    for skew in skews:
        demand = skewed_demand(N_PORTS, skew, total_bytes=8e6,
                               seed=demand_seed)
        solstice = SolsticeScheduler(
            N_PORTS, link_rate_bps=10 * GIGABIT,
            reconfig_ps=20 * MICROSECONDS, min_slice_factor=1.0)
        hotspot = HotspotScheduler(N_PORTS, hold_ps=1 * MILLISECONDS)
        eclipse = EclipseScheduler(
            N_PORTS, link_rate_bps=10 * GIGABIT,
            reconfig_ps=20 * MICROSECONDS, max_matchings=8)
        sol_frac = _served_fraction(solstice, demand)
        hot_frac = _served_fraction(hotspot, demand)
        ecl_frac = _served_fraction(eclipse, demand)
        sol_series.append(sol_frac)
        hot_series.append(hot_frac)
        ecl_series.append(ecl_frac)
        rows.append([f"{skew:.2f}", f"{sol_frac:.3f}",
                     f"{ecl_frac:.3f}", f"{hot_frac:.3f}"])
    report.tables.append(render_table(
        ["skew", "solstice OCS fraction", "eclipse OCS fraction",
         "hotspot OCS fraction"],
        rows, title="decision analysis: circuit-served byte fraction"))
    report.data["solstice_fraction"] = sol_series
    report.data["hotspot_fraction"] = hot_series
    report.data["eclipse_fraction"] = ecl_series
    if hot_series[-1] > hot_series[0]:
        report.expectations.append(
            "hotspot circuit fraction grows with skew "
            f"({hot_series[0]:.3f} -> {hot_series[-1]:.3f}) — circuits "
            "capture the 'long bursts'")
    if all(s >= h - 1e-9 for s, h in zip(sol_series, hot_series)):
        report.expectations.append(
            "solstice (multi-matching) serves >= hotspot "
            "(single-matching) at every skew")


def _estimator_table(report: ExperimentReport, stream_seed: int,
                     demand_seed: int) -> None:
    """Ablation: estimator error on a bursty observation stream."""
    rng = np.random.default_rng(stream_seed)
    true_demand = skewed_demand(N_PORTS, 0.7, total_bytes=4e6,
                                seed=demand_seed)
    estimators = {
        "instant": InstantEstimator(N_PORTS),
        "ewma(0.25)": EwmaEstimator(N_PORTS, alpha=0.25),
        "sketch(w=16)": SketchEstimator(N_PORTS, width=16, depth=4),
    }
    # Feed each estimator the same noisy packet stream, with periodic
    # snapshots (the EWMA filter is snapshot-driven; 10 epochs of 200
    # packets each mimics the scheduling cadence).
    flat = true_demand.ravel() / true_demand.sum()
    zeros = np.zeros((N_PORTS, N_PORTS))
    for packet_index in range(2000):
        index = rng.choice(len(flat), p=flat)
        src, dst = divmod(int(index), N_PORTS)
        for estimator in estimators.values():
            estimator.observe(src, dst, 1500)
        if (packet_index + 1) % 200 == 0:
            estimators["ewma(0.25)"].snapshot(zeros)
    rows = []
    errors = {}
    offered = true_demand / true_demand.sum()
    for name, estimator in estimators.items():
        estimate = estimator.estimate()
        total = estimate.sum()
        normalised = estimate / total if total > 0 else estimate
        err = float(np.abs(normalised - offered).sum()) / 2.0
        errors[name] = err
        rows.append([name, f"{err:.4f}"])
    report.tables.append(render_table(
        ["estimator", "L1 share error"],
        rows, title="estimator ablation (2000 packets, skew 0.7)"))
    report.data["estimator_errors"] = errors
    if errors["instant"] <= errors["sketch(w=16)"] + 1e-9:
        report.expectations.append(
            "exact counters estimate no worse than a collision-prone "
            "sketch (hardware cost trade-off quantified)")


def _e2e_scenario(skew: float, duration_ps: int, seed: int,
                  scheduler: str) -> Scenario:
    """One end-to-end sweep point as a Scenario derivation."""
    return Scenario(
        name="e6-e2e",
        n_ports=N_PORTS,
        switching_time_ps=20 * MICROSECONDS,
        scheduler=scheduler,
        scheduler_kwargs=({"threshold_bytes": 20_000.0}
                          if scheduler == "hotspot" else {}),
        timing_preset="netfpga_sume",
        epoch_ps=200 * MICROSECONDS,
        default_slot_ps=180 * MICROSECONDS,
        eps_rate_bps=2.5 * GIGABIT,
        duration_ps=duration_ps,
        seed=seed,
        traffic=(TrafficPhase(
            pattern="hotspot", source="onoff", load=0.6 * 200 / 450,
            pattern_kwargs={"skew": skew},
            source_kwargs={"burst_fraction": 0.6,
                           "mean_on_ps": 200 * MICROSECONDS,
                           "mean_off_ps": 250 * MICROSECONDS}),),
    )


def _end_to_end_table(report: ExperimentReport, skews: List[float],
                      duration_ps: int, seed: int,
                      scheduler: str = "hotspot") -> None:
    rows = []
    fractions = []
    for skew in skews:
        result = _e2e_scenario(skew, duration_ps, seed,
                               scheduler).build().run()
        fractions.append(result.ocs_fraction)
        rows.append([f"{skew:.2f}", f"{result.ocs_fraction:.3f}",
                     f"{result.utilisation():.3f}"])
    report.tables.append(render_table(
        ["traffic skew", "OCS byte fraction", "utilisation"],
        rows,
        title="end-to-end: hotspot traffic through the full framework"))
    report.data["e2e_ocs_fraction"] = fractions
    if fractions[-1] > fractions[0]:
        report.expectations.append(
            "end-to-end OCS byte share rises with traffic skew "
            f"({fractions[0]:.3f} -> {fractions[-1]:.3f})")


def run(config: ExperimentConfig) -> ExperimentReport:
    """Offload fraction vs skew; estimator ablation."""
    report = ExperimentReport(
        experiment_id="e6",
        title="OCS offload fraction vs demand skew (hybrid division of "
              "labour)",
    )
    report.check_overrides(config, KNOWN_OVERRIDES)
    skews = list(config.get(
        "skews", [0.0, 0.5, 0.9] if config.quick
        else [0.0, 0.25, 0.5, 0.75, 0.9]))
    _decision_table(report, skews, demand_seed=config.derive_seed(4))
    _estimator_table(report, stream_seed=config.derive_seed(9),
                     demand_seed=config.derive_seed(4))
    duration = config.get(
        "duration_ps",
        4 * MILLISECONDS if config.quick else 12 * MILLISECONDS)
    # The end-to-end sweep is the expensive part; quick mode trims it
    # to the endpoints — unless the caller overrode the skews, in
    # which case every table honours the same list (a sweep gridding
    # over ``skews`` must not collapse to identical e2e sections).
    if config.quick and "skews" not in config.overrides:
        e2e_skews = [0.0, 0.9]
    else:
        e2e_skews = skews
    _end_to_end_table(report, e2e_skews, duration,
                      seed=config.derive_seed(8),
                      scheduler=config.scheduler or "hotspot")
    return report


def run_e6(quick: bool = False) -> ExperimentReport:
    """Historical entry point; see :func:`run`."""
    return run(ExperimentConfig(quick=quick))


__all__ = ["run", "run_e6", "skewed_demand", "KNOWN_OVERRIDES"]
