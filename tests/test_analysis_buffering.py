"""Tests for the Figure 1 analytic buffering model."""

import pytest

from repro.analysis.buffering import (
    BufferingModel,
    figure1_curve,
    format_bytes,
)
from repro.sim.errors import ConfigurationError
from repro.sim.time import GIGABIT, MILLISECONDS, NANOSECONDS


class TestPaperArithmetic:
    """The numbers behind §2's worked example, exactly."""

    def test_gigabytes_at_one_millisecond(self):
        model = BufferingModel(n_ports=64, port_rate_bps=10 * GIGABIT)
        total = model.total_bytes(1 * MILLISECONDS)
        # 64 ports x (64 x 1ms) x 10G/8 = 5.12 GB — "approximately
        # gigabytes".
        assert total == 5_120_000_000

    def test_kilobytes_at_one_nanosecond(self):
        model = BufferingModel(n_ports=64, port_rate_bps=10 * GIGABIT)
        total = model.total_bytes(1 * NANOSECONDS)
        assert total == 5_120  # "only kilobytes"

    def test_requirement_linear_in_switching_time(self):
        model = BufferingModel()
        assert model.total_bytes(2000) == 2 * model.total_bytes(1000)

    def test_scheduler_latency_adds_to_window(self):
        model = BufferingModel()
        assert model.total_bytes(1000, scheduler_latency_ps=1000) \
            == model.total_bytes(2000)

    def test_single_blackout_is_n_times_smaller(self):
        model = BufferingModel(n_ports=64)
        per_round = model.per_port_bytes(MILLISECONDS)
        per_blackout = model.single_blackout_bytes(MILLISECONDS)
        assert per_round == 64 * per_blackout


class TestRegimes:
    def test_regime_boundary_consistent_with_points(self):
        model = BufferingModel(n_ports=64, port_rate_bps=10 * GIGABIT)
        boundary = model.regime_boundary_ps()
        below = model.point(max(0, boundary - 1000))
        above = model.point(boundary + 1000)
        assert below.fits_in_tor
        assert not above.fits_in_tor

    def test_point_fields(self):
        model = BufferingModel(n_ports=4, port_rate_bps=10 * GIGABIT)
        point = model.point(1000, 500)
        assert point.switching_time_ps == 1000
        assert point.scheduler_latency_ps == 500
        assert point.total_bytes == 4 * point.per_port_bytes
        assert point.regime in ("switch", "host")

    def test_row_renders(self):
        row = BufferingModel().point(MILLISECONDS).row()
        assert row[0] == "1ms"
        assert row[-1] == "host"


class TestCurve:
    def test_curve_matches_model(self):
        times = [1000, 2000, 4000]
        curve = figure1_curve(times, n_ports=8)
        model = BufferingModel(n_ports=8)
        assert [p.total_bytes for p in curve] == \
            [model.total_bytes(t) for t in times]

    def test_curve_monotone(self):
        curve = figure1_curve([10, 100, 1000, 10_000])
        totals = [p.total_bytes for p in curve]
        assert totals == sorted(totals)


class TestValidation:
    def test_bad_ports(self):
        with pytest.raises(ConfigurationError):
            BufferingModel(n_ports=0)

    def test_bad_rate(self):
        with pytest.raises(ConfigurationError):
            BufferingModel(port_rate_bps=0)

    def test_negative_times(self):
        with pytest.raises(ConfigurationError):
            BufferingModel().per_port_bytes(-1)
        with pytest.raises(ConfigurationError):
            BufferingModel().single_blackout_bytes(-1)


class TestFormatBytes:
    @pytest.mark.parametrize("nbytes,expected", [
        (0, "0B"),
        (999, "999B"),
        (5_120, "5.12KB"),
        (5_120_000, "5.12MB"),
        (5_120_000_000, "5.12GB"),
    ])
    def test_examples(self, nbytes, expected):
        assert format_bytes(nbytes) == expected
