"""Integration matrix: every scheduler through the full framework.

These tests catch interface drift between the algorithm library and the
framework: a scheduler that emits malformed plans, mishandles hold
times, or miscomputes residue will fail here even if its unit tests
pass.  Each run is audited for protocol violations and checked for
basic service (packets actually delivered, accounting balanced).
"""

import pytest

from repro.analysis.tracing import PathTracer
from repro.core.audit import ProtocolAuditor
from repro.core.config import FrameworkConfig
from repro.core.framework import HybridSwitchFramework
from repro.net.host import HostBufferMode
from repro.sim.time import MICROSECONDS, MILLISECONDS
from repro.traffic.patterns import HotspotDestination
from repro.traffic.sources import PoissonSource

#: scheduler name -> framework-appropriate constructor kwargs.
SCHEDULER_MATRIX = {
    "tdma": {},
    "pim": {"iterations": 2},
    "islip": {"iterations": 2},
    "wfa": {},
    "greedy-mwm": {},
    "mwm": {},
    "hotspot": {"hold_ps": 50 * MICROSECONDS},
    "bvn": {"min_hold_ps": 5 * MICROSECONDS},
    "solstice": {"reconfig_ps": 5 * MICROSECONDS,
                 "max_matchings": 4},
    "eclipse": {"reconfig_ps": 5 * MICROSECONDS, "max_matchings": 3},
    "distributed-greedy": {"staleness_epochs": 1},
}


def _run(scheduler: str, kwargs, mode=HostBufferMode.SWITCH_BUFFERED):
    config = FrameworkConfig(
        n_ports=6,
        switching_time_ps=5 * MICROSECONDS,
        scheduler=scheduler,
        scheduler_kwargs=kwargs,
        timing_preset="netfpga_sume",
        epoch_ps=60 * MICROSECONDS,
        default_slot_ps=50 * MICROSECONDS,
        buffer_mode=mode,
        seed=99,
    )
    fw = HybridSwitchFramework(config)
    auditor = ProtocolAuditor(fw)
    for host in fw.hosts:
        PoissonSource(
            fw.sim, host, rate_bps=0.25 * config.port_rate_bps,
            chooser=HotspotDestination(
                6, host.host_id, skew=0.5,
                rng=fw.sim.streams.stream(f"d{host.host_id}")),
            rng=fw.sim.streams.stream(f"s{host.host_id}"))
    result = fw.run(4 * MILLISECONDS)
    return fw, auditor, result


class TestEverySchedulerFastMode:
    @pytest.mark.parametrize("name,kwargs",
                             sorted(SCHEDULER_MATRIX.items()))
    def test_serves_traffic_cleanly(self, name, kwargs):
        __, auditor, result = _run(name, kwargs)
        auditor.check_conservation(result)
        auditor.assert_clean()
        assert result.delivered_count > 0, f"{name} delivered nothing"
        assert result.delivery_ratio > 0.3, (
            f"{name} delivered only {result.delivery_ratio:.2f}")
        assert result.drops["ocs_dark"] == 0
        assert result.drops["ocs_misdirected"] == 0

    @pytest.mark.parametrize("name,kwargs",
                             sorted(SCHEDULER_MATRIX.items()))
    def test_deterministic_across_runs(self, name, kwargs):
        __, __a, first = _run(name, kwargs)
        __, __b, second = _run(name, kwargs)
        assert first.delivered_count == second.delivered_count
        assert first.delivered_bytes == second.delivered_bytes


class TestSlowModeMatrix:
    @pytest.mark.parametrize("name", ["hotspot", "mwm", "greedy-mwm",
                                      "solstice", "eclipse"])
    def test_host_buffered_service(self, name):
        kwargs = SCHEDULER_MATRIX[name]
        __, __a, result = _run(name, kwargs,
                               mode=HostBufferMode.HOST_BUFFERED)
        assert result.delivered_count > 0
        assert result.host_peak_buffer_bytes > 0
        assert result.switch_peak_buffer_bytes == 0


class TestTracerAuditorCompose:
    def test_both_instruments_together(self):
        config = FrameworkConfig(
            n_ports=4, switching_time_ps=1 * MICROSECONDS,
            scheduler="islip", timing_preset="ideal",
            default_slot_ps=10 * MICROSECONDS, seed=1)
        fw = HybridSwitchFramework(config)
        tracer = PathTracer(fw)
        auditor = ProtocolAuditor(fw)
        for host in fw.hosts:
            PoissonSource(
                fw.sim, host, rate_bps=1e9,
                chooser=HotspotDestination(
                    4, host.host_id, skew=0.5,
                    rng=fw.sim.streams.stream(f"d{host.host_id}")),
                rng=fw.sim.streams.stream(f"s{host.host_id}"))
        result = fw.run(2 * MILLISECONDS)
        auditor.assert_clean()
        assert tracer.traced_packets() >= result.delivered_count
        assert result.delivered_count > 0
