"""Tests for the wrapped wavefront arbiter."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedulers.wfa import WfaScheduler


def _full_backlog(n):
    demand = np.ones((n, n)) * 10
    np.fill_diagonal(demand, 0.0)
    return demand


@st.composite
def demand_matrices(draw, max_n=8):
    n = draw(st.integers(min_value=2, max_value=max_n))
    values = draw(st.lists(st.integers(0, 50),
                           min_size=n * n, max_size=n * n))
    demand = np.array(values, dtype=float).reshape(n, n)
    return demand


class TestWfa:
    def test_matches_only_requested_pairs(self):
        demand = np.zeros((4, 4))
        demand[0, 2] = 5
        demand[3, 1] = 5
        matching = WfaScheduler(4).compute(demand).first
        assert set(matching.pairs()) == {(0, 2), (3, 1)}

    def test_full_backlog_full_matching_every_slot(self):
        # With all off-diagonal VOQs backlogged a wavefront pass always
        # fills every row/column (each wrapped diagonal offers a
        # disjoint candidate set).
        wfa = WfaScheduler(6)
        demand = _full_backlog(6)
        for __ in range(12):
            assert wfa.compute(demand).first.size >= 5

    def test_priority_rotates_for_fairness(self):
        # Two inputs contending for one output: the winner alternates.
        demand = np.zeros((2, 2))
        demand[0, 1] = 5
        demand[1, 0] = 5
        wfa = WfaScheduler(2)
        first = wfa.compute(demand).first
        second = wfa.compute(demand).first
        assert first.size == 2 and second.size == 2
        # Rotation visible with a contended single-output pattern.
        contended = np.zeros((3, 3))
        contended[0, 2] = contended[1, 2] = 1
        winners = set()
        wfa3 = WfaScheduler(3)
        for __ in range(3):
            matching = wfa3.compute(contended).first
            winners.add(matching.input_for(2))
        assert winners == {0, 1}

    def test_deterministic(self):
        demand = _full_backlog(5)
        a = WfaScheduler(5)
        b = WfaScheduler(5)
        for __ in range(5):
            assert a.compute(demand).first == b.compute(demand).first

    @given(demand_matrices())
    @settings(max_examples=40, deadline=None)
    def test_property_maximal_matching(self, demand):
        """WFA's matching is maximal: no requested pair has both its
        row and column free afterwards."""
        matching = WfaScheduler(demand.shape[0]).compute(demand).first
        n = demand.shape[0]
        used_rows = {i for i, __ in matching.pairs()}
        used_cols = {j for __, j in matching.pairs()}
        for i in range(n):
            for j in range(n):
                if demand[i, j] > 0:
                    assert i in used_rows or j in used_cols

    @given(demand_matrices())
    @settings(max_examples=40, deadline=None)
    def test_property_valid_partial_permutation(self, demand):
        matching = WfaScheduler(demand.shape[0]).compute(demand).first
        outs = [o for __, o in matching.pairs()]
        assert len(outs) == len(set(outs))
        for i, j in matching.pairs():
            assert demand[i, j] > 0

    def test_registered(self):
        from repro.schedulers.registry import create_scheduler
        assert isinstance(create_scheduler("wfa", n_ports=4),
                          WfaScheduler)
