"""The paper's framework (Figure 2), as an executable software twin.

Three logic blocks, same partition as the proposed NetFPGA design:

* :mod:`~repro.core.processing` — flow classification, VOQs, request
  generation, grant-driven dequeue ("processing logic");
* :mod:`~repro.core.switching` — OCS circuit configuration plus EPS
  residual forwarding ("switching logic");
* :mod:`~repro.core.scheduling` — demand estimation, schedule
  computation under a timing model, grant issue ("scheduling logic" —
  the user-pluggable slot).

:class:`~repro.core.framework.HybridSwitchFramework` wires them to a
rack of hosts and runs experiments;
:class:`~repro.core.results.RunResult` is what an experiment gets back.
"""

from repro.core.audit import AuditError, ProtocolAuditor
from repro.core.config import FrameworkConfig
from repro.core.framework import HybridSwitchFramework
from repro.core.messages import CircuitConfig, Grant, Request
from repro.core.processing import ProcessingLogic
from repro.core.results import RunResult
from repro.core.scheduling import SchedulingLogic
from repro.core.switching import SwitchingLogic

__all__ = [
    "FrameworkConfig",
    "HybridSwitchFramework",
    "ProcessingLogic",
    "SwitchingLogic",
    "SchedulingLogic",
    "RunResult",
    "Request",
    "Grant",
    "CircuitConfig",
    "ProtocolAuditor",
    "AuditError",
]
