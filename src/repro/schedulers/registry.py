"""Scheduler registry — the rapid-prototyping entry point.

The paper's framework exists so researchers can drop a new scheduling
algorithm into a fixed infrastructure.  The software equivalent of that
RTL slot is this registry: register a factory under a name, and every
experiment, benchmark and CLI invocation can select it with a string.

    @register_scheduler("my-sched")
    def _make(n_ports, **kwargs):
        return MyScheduler(n_ports, **kwargs)

    sched = create_scheduler("my-sched", n_ports=64)
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.schedulers.base import Scheduler
from repro.sim.errors import ConfigurationError

SchedulerFactory = Callable[..., Scheduler]

_REGISTRY: Dict[str, SchedulerFactory] = {}


def register_scheduler(name: str,
                       factory: SchedulerFactory = None):
    """Register a scheduler factory under ``name``.

    Usable as a decorator (``@register_scheduler("x")``) or a plain
    call (``register_scheduler("x", factory)``).  Re-registering a name
    raises — silent replacement hides typos in experiment configs.
    """

    def _register(func: SchedulerFactory) -> SchedulerFactory:
        if name in _REGISTRY:
            raise ConfigurationError(
                f"scheduler {name!r} is already registered")
        _REGISTRY[name] = func
        return func

    if factory is not None:
        return _register(factory)
    return _register


def unregister_scheduler(name: str) -> bool:
    """Remove a registration (tests cleaning up after themselves).

    Returns whether ``name`` was actually registered, so cleanup code
    can assert it removed what it meant to instead of silently
    misspelling a name into a no-op.
    """
    return _REGISTRY.pop(name, None) is not None


def create_scheduler(name: str, n_ports: int, **kwargs) -> Scheduler:
    """Instantiate the scheduler registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheduler {name!r}; available: "
            f"{sorted(_REGISTRY)}") from None
    return factory(n_ports=n_ports, **kwargs)


def available_schedulers() -> List[str]:
    """Sorted names of every registered scheduler."""
    return sorted(_REGISTRY)


def _register_builtins() -> None:
    """Register the library's own algorithms under their canonical names."""
    from repro.schedulers.bvn import BvnScheduler
    from repro.schedulers.fixed import RoundRobinTdma
    from repro.schedulers.hotspot import HotspotScheduler
    from repro.schedulers.islip import IslipScheduler
    from repro.schedulers.mwm import GreedyMwmScheduler, MwmScheduler
    from repro.schedulers.pim import PimScheduler
    from repro.schedulers.solstice import SolsticeScheduler

    register_scheduler("tdma", lambda n_ports, **kw:
                       RoundRobinTdma(n_ports, **kw))
    register_scheduler("pim", lambda n_ports, **kw:
                       PimScheduler(n_ports, **kw))
    register_scheduler("islip", lambda n_ports, **kw:
                       IslipScheduler(n_ports, **kw))
    register_scheduler("mwm", lambda n_ports, **kw:
                       MwmScheduler(n_ports, **kw))
    register_scheduler("greedy-mwm", lambda n_ports, **kw:
                       GreedyMwmScheduler(n_ports, **kw))
    register_scheduler("bvn", lambda n_ports, **kw:
                       BvnScheduler(n_ports, **kw))
    register_scheduler("solstice", lambda n_ports, **kw:
                       SolsticeScheduler(n_ports, **kw))
    register_scheduler("hotspot", lambda n_ports, **kw:
                       HotspotScheduler(n_ports, **kw))

    from repro.schedulers.eclipse import EclipseScheduler
    from repro.schedulers.wfa import WfaScheduler

    register_scheduler("wfa", lambda n_ports, **kw:
                       WfaScheduler(n_ports, **kw))
    register_scheduler("eclipse", lambda n_ports, **kw:
                       EclipseScheduler(n_ports, **kw))

    # Imported lazily to avoid a package cycle (control -> schedulers).
    def _make_distributed(n_ports, **kw):
        from repro.control.distributed import DistributedGreedyScheduler

        return DistributedGreedyScheduler(n_ports, **kw)

    register_scheduler("distributed-greedy", _make_distributed)


_register_builtins()

__all__ = [
    "register_scheduler",
    "unregister_scheduler",
    "create_scheduler",
    "available_schedulers",
]
