#!/usr/bin/env python3
"""Explore Figure 1's buffering model beyond the paper's operating point.

The paper works one example (64 x 10 Gbps).  This script regenerates
that point and then asks the forward-looking questions the model makes
cheap: what happens at 100 Gbps ports (the NetFPGA-SUME target) and at
higher radix, and how much switching time a given ToR SRAM budget can
tolerate before buffering must move to the hosts.

    python examples/buffering_analysis.py
"""

from repro.analysis.buffering import BufferingModel, format_bytes
from repro.analysis.tables import render_table
from repro.hwmodel.presets import make_timing
from repro.sim.time import (
    GIGABIT,
    MICROSECONDS,
    MILLISECONDS,
    NANOSECONDS,
    format_time,
)

SWITCHING_TIMES = (
    1 * NANOSECONDS, 100 * NANOSECONDS, 10 * MICROSECONDS,
    1 * MILLISECONDS,
)

OPERATING_POINTS = (
    (64, 10 * GIGABIT),     # the paper's example
    (64, 100 * GIGABIT),    # NetFPGA-SUME-era line rate
    (256, 10 * GIGABIT),    # high radix
)


def requirement_tables() -> None:
    for n_ports, rate in OPERATING_POINTS:
        model = BufferingModel(n_ports=n_ports, port_rate_bps=rate)
        rows = [model.point(t).row() for t in SWITCHING_TIMES]
        print(render_table(
            ["switching time", "per-port", "total", "regime"],
            rows,
            title=f"{n_ports} ports x {rate / 1e9:.0f} Gbps"))
        print()


def boundary_table() -> None:
    rows = []
    for n_ports, rate in OPERATING_POINTS:
        model = BufferingModel(n_ports=n_ports, port_rate_bps=rate)
        ideal = model.regime_boundary_ps()
        with_hw = model.regime_boundary_ps(
            make_timing("netfpga_sume").total_ps("islip", n_ports))
        rows.append([
            f"{n_ports}x{rate / 1e9:.0f}G",
            format_time(ideal),
            format_time(with_hw),
        ])
    print(render_table(
        ["fabric", "max switching time (ideal sched)",
         "max switching time (FPGA sched)"],
        rows,
        title="Largest switching time a 12MB ToR can absorb "
              "(switch-buffering regime boundary)"))


def main() -> None:
    requirement_tables()
    boundary_table()
    model = BufferingModel()
    print()
    print("The paper's sentence, recomputed:")
    print(f"  1 ms switching  -> "
          f"{format_bytes(model.total_bytes(1 * MILLISECONDS))} "
          "('approximately gigabytes')")
    print(f"  1 ns switching  -> "
          f"{format_bytes(model.total_bytes(1 * NANOSECONDS))} "
          "('only kilobytes')")


if __name__ == "__main__":
    main()
