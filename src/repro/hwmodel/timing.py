"""Timing-model interface and the latency breakdown record.

A :class:`SchedulerTiming` prices one pass of the scheduling loop for a
given algorithm at a given port count.  The output is a
:class:`LatencyBreakdown` whose five components are exactly the latency
sources §2 of the paper enumerates, so experiment E2 can print them
side by side.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional

from repro.sim.time import format_time


@dataclass(frozen=True)
class LatencyBreakdown:
    """Picosecond cost of one scheduling-loop pass, by component."""

    demand_estimation_ps: int
    computation_ps: int
    io_ps: int
    propagation_ps: int
    synchronization_ps: int

    @property
    def total_ps(self) -> int:
        """Sum of all components."""
        return (self.demand_estimation_ps + self.computation_ps
                + self.io_ps + self.propagation_ps
                + self.synchronization_ps)

    def as_dict(self) -> Dict[str, int]:
        """Component name → picoseconds (for table rendering)."""
        return {
            "demand_estimation": self.demand_estimation_ps,
            "computation": self.computation_ps,
            "io": self.io_ps,
            "propagation": self.propagation_ps,
            "synchronization": self.synchronization_ps,
            "total": self.total_ps,
        }

    def __str__(self) -> str:
        parts = ", ".join(
            f"{key}={format_time(value)}"
            for key, value in self.as_dict().items())
        return f"LatencyBreakdown({parts})"


class SchedulerTiming(abc.ABC):
    """Prices the scheduling loop for one implementation technology."""

    #: Display name for tables ("netfpga_sume", "cpu_helios", ...).
    name = "abstract"

    @abc.abstractmethod
    def breakdown(self, algorithm: str, n_ports: int,
                  stats: Optional[Dict[str, int]] = None) -> LatencyBreakdown:
        """Latency components for one pass of ``algorithm`` on ``n_ports``.

        ``stats`` is the scheduler's ``last_stats`` (iterations executed,
        matchings emitted); models use it to price data-dependent work.
        When ``None``, worst-case defaults apply.
        """

    def total_ps(self, algorithm: str, n_ports: int,
                 stats: Optional[Dict[str, int]] = None) -> int:
        """Convenience: total loop latency in picoseconds."""
        return self.breakdown(algorithm, n_ports, stats).total_ps


class IdealTiming(SchedulerTiming):
    """Zero-latency scheduler — isolates algorithmic behaviour.

    Used by the cell-mode fabric (where the slot clock *is* the
    scheduler cadence) and as the "infinitely fast hardware" limit in
    sweeps.
    """

    name = "ideal"

    def breakdown(self, algorithm: str, n_ports: int,
                  stats: Optional[Dict[str, int]] = None) -> LatencyBreakdown:
        return LatencyBreakdown(0, 0, 0, 0, 0)


__all__ = ["SchedulerTiming", "LatencyBreakdown", "IdealTiming"]
