"""E2 — scheduling-loop latency: software vs hardware.

§2's core quantitative claim: "Software based schedulers used in hybrid
switching architectures operate in the order of milliseconds", while
hardware schedulers "can match the speeds of fast optical switches".

We decompose one scheduling-loop pass into the paper's own latency
components (demand estimation, schedule computation, IO, propagation,
synchronisation) for each timing preset, using *measured* per-algorithm
work (the scheduler actually runs on a representative demand matrix, so
iteration counts are real, not worst-case).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.analysis.tables import render_table
from repro.experiments.base import ExperimentConfig, ExperimentReport
from repro.hwmodel.presets import make_timing
from repro.schedulers.registry import create_scheduler
from repro.sim.time import MICROSECONDS, MILLISECONDS, format_time

#: (registry name, constructor kwargs) — algorithms priced in the table.
#: Solstice gets a realistic reconfiguration cost so its schedule
#: length (and hence priced work) reflects a deployable configuration.
ALGORITHMS = (
    ("tdma", {}),
    ("islip", {"iterations": 4}),
    ("pim", {"iterations": 4}),
    ("greedy-mwm", {}),
    ("mwm", {}),
    ("hotspot", {}),
    ("solstice", {"reconfig_ps": 20 * MICROSECONDS}),
)

PRESETS = ("netfpga_sume", "asic_1ghz", "cpu_helios", "cpu_cthrough")

#: Overrides this experiment honours (``repro run e2 --set ...``).
KNOWN_OVERRIDES = frozenset({"port_counts"})


def _representative_demand(n_ports: int, seed: int = 7) -> np.ndarray:
    """A skewed, fully loaded demand matrix (bytes)."""
    rng = np.random.default_rng(seed)
    demand = rng.pareto(1.5, size=(n_ports, n_ports)) * 100_000
    np.fill_diagonal(demand, 0.0)
    return demand


def run(config: ExperimentConfig) -> ExperimentReport:
    """Loop-latency decomposition per preset/algorithm/port-count."""
    report = ExperimentReport(
        experiment_id="e2",
        title="scheduling-loop latency: software (ms) vs hardware (ns-us)",
    )
    report.check_overrides(config, KNOWN_OVERRIDES)
    demand_seed = config.derive_seed(7)
    port_counts = tuple(config.get(
        "port_counts", (16, 64) if config.quick else (16, 64, 128)))
    totals: Dict[str, List[int]] = {preset: [] for preset in PRESETS}
    for n_ports in port_counts:
        demand = _representative_demand(n_ports, seed=demand_seed)
        rows = []
        for algo_name, kwargs in ALGORITHMS:
            scheduler = create_scheduler(algo_name, n_ports=n_ports,
                                         **kwargs)
            scheduler.compute(demand)
            stats = scheduler.last_stats
            cells = [algo_name]
            for preset in PRESETS:
                timing = make_timing(preset)
                total = timing.total_ps(algo_name, n_ports, stats)
                totals[preset].append(total)
                cells.append(format_time(total))
            rows.append(cells)
        report.tables.append(render_table(
            ["algorithm"] + list(PRESETS), rows,
            title=f"loop latency, {n_ports} ports"))
    # Component breakdown at the paper's 64-port point, iSLIP.
    scheduler = create_scheduler("islip", n_ports=64, iterations=4)
    scheduler.compute(_representative_demand(64, seed=demand_seed))
    rows = []
    for preset in PRESETS:
        timing = make_timing(preset)
        breakdown = timing.breakdown("islip", 64, scheduler.last_stats)
        rows.append([preset] + [
            format_time(v) for v in breakdown.as_dict().values()])
    report.tables.append(render_table(
        ["preset", "demand est", "compute", "io", "propagation",
         "sync", "total"],
        rows,
        title="component breakdown, iSLIP-4, 64 ports"))
    report.data["totals_ps"] = totals
    # Deployment-representative points: the published software systems
    # ran MWM-class policies on 64-port fabrics.
    scheduler = create_scheduler("hotspot", n_ports=64)
    scheduler.compute(_representative_demand(64, seed=demand_seed))
    hotspot_64_stats = scheduler.last_stats
    sw_helios = make_timing("cpu_helios").total_ps(
        "hotspot", 64, hotspot_64_stats)
    sw_cthrough = make_timing("cpu_cthrough").total_ps(
        "hotspot", 64, hotspot_64_stats)
    islip_scheduler = create_scheduler("islip", n_ports=64, iterations=4)
    islip_scheduler.compute(_representative_demand(64, seed=demand_seed))
    hw_fpga = make_timing("netfpga_sume").total_ps(
        "islip", 64, islip_scheduler.last_stats)
    report.data["sw_helios_ps"] = sw_helios
    report.data["sw_cthrough_ps"] = sw_cthrough
    report.data["hw_fpga_ps"] = hw_fpga
    if min(sw_helios, sw_cthrough) >= MILLISECONDS / 2:
        report.expectations.append(
            f"representative software loops are "
            f"{format_time(sw_helios)} (Helios-class) and "
            f"{format_time(sw_cthrough)} (c-Through-class) — 'order of "
            "milliseconds' (paper §2)")
    if hw_fpga <= 10 * MICROSECONDS:
        report.expectations.append(
            f"the FPGA loop is {format_time(hw_fpga)} — "
            f"{min(sw_helios, sw_cthrough) / hw_fpga:.0f}x faster, "
            "3+ orders of magnitude")
    return report


def run_e2(quick: bool = False) -> ExperimentReport:
    """Historical entry point; see :func:`run`."""
    return run(ExperimentConfig(quick=quick))


__all__ = ["run", "run_e2", "ALGORITHMS", "PRESETS",
           "KNOWN_OVERRIDES"]
