"""E4 — latency and jitter of latency-sensitive traffic.

§2: host buffering under slow scheduling "can increase the overall
traffic latency and jitter of widely used applications (i.e., VOIP,
multiuser gaming etc.) and decrease the user quality of experience."

Setup: one CBR stream (small periodic packets, elevated priority) rides
the switch alongside bursty background traffic, under the two regimes
of Figure 1:

* **Fast scheduling** — switch-buffered, nanosecond-class OCS, FPGA
  timing: the stream flows through VOQs that drain every few
  microseconds.
* **Slow scheduling** — host-buffered, the CBR packets wait at their
  host for a millisecond-scale grant epoch computed by a software-class
  scheduler.

Measured: p50/p99 latency and RFC 3550 interarrival jitter of the CBR
stream.  The CBR period is scaled down (packets every 200 µs rather
than VOIP's 20 ms) so a 40 ms simulation collects hundreds of samples;
scaling the period does not change who delays the packets or by how
much — that is set by the scheduling epoch, not the stream.
"""

from __future__ import annotations

from typing import Tuple

from repro.analysis.tables import render_table
from repro.experiments.base import ExperimentConfig, ExperimentReport
from repro.scenario import Scenario, TrafficPhase
from repro.sim.time import (
    MICROSECONDS,
    MILLISECONDS,
    NANOSECONDS,
    format_time,
)

N_PORTS = 8
CBR_PERIOD_PS = 200 * MICROSECONDS
CBR_BYTES = 200

#: Overrides this experiment honours (``repro run e4 --set ...``).
KNOWN_OVERRIDES = frozenset({"duration_ps"})

#: CBR host0 -> host1 plus bursty background on every host.  The CBR
#: phase comes first so flow-id allocation and t=0 event ordering match
#: the historical hand-wired construction exactly.
_TRAFFIC = (
    TrafficPhase(pattern="fixed", source="cbr", load=1.0, hosts=(0,),
                 pattern_kwargs={"dst": 1},
                 source_kwargs={"packet_bytes": CBR_BYTES,
                                "period_ps": CBR_PERIOD_PS}),
    TrafficPhase(pattern="uniform", source="onoff", load=0.5 / 3,
                 source_kwargs={"burst_fraction": 0.5,
                                "mean_on_ps": 100 * MICROSECONDS,
                                "mean_off_ps": 200 * MICROSECONDS}),
)


def _fast_scenario(seed: int, duration_ps: int) -> Scenario:
    return Scenario(
        name="e4-fast",
        n_ports=N_PORTS,
        switching_time_ps=100 * NANOSECONDS,
        scheduler="islip",
        scheduler_kwargs={"iterations": 2},
        timing_preset="netfpga_sume",
        default_slot_ps=5 * MICROSECONDS,
        buffer_mode="switch",
        duration_ps=duration_ps,
        seed=seed,
        traffic=_TRAFFIC,
    )


def _slow_scenario(seed: int, duration_ps: int) -> Scenario:
    return Scenario(
        name="e4-slow",
        n_ports=N_PORTS,
        switching_time_ps=100 * MICROSECONDS,
        scheduler="hotspot",
        timing_preset="cpu_cthrough",
        epoch_ps=2 * MILLISECONDS,
        default_slot_ps=MILLISECONDS,
        buffer_mode="host",
        duration_ps=duration_ps,
        seed=seed,
        traffic=_TRAFFIC,
    )


def _measure(scenario: Scenario) -> Tuple[float, float, float, int]:
    run = scenario.build()
    flow_id = run.phase_sources(0)[0].source.flow_id
    result = run.run()
    stream = result.flow_packets(flow_id)
    latencies = [p.latency_ps for p in stream if p.latency_ps is not None]
    if latencies:
        latencies.sort()
        p50 = latencies[len(latencies) // 2]
        p99 = latencies[min(len(latencies) - 1,
                            round(0.99 * (len(latencies) - 1)))]
    else:
        p50 = p99 = 0
    jitter = result.flow_jitter_ps(flow_id, CBR_PERIOD_PS)
    return float(p50), float(p99), jitter, len(stream)


def run(config: ExperimentConfig) -> ExperimentReport:
    """VOIP-class latency/jitter, fast vs slow scheduling."""
    report = ExperimentReport(
        experiment_id="e4",
        title="latency & jitter of a VOIP-class stream, "
              "slow vs fast scheduling",
    )
    report.check_overrides(config, KNOWN_OVERRIDES)
    duration = config.get(
        "duration_ps",
        10 * MILLISECONDS if config.quick else 40 * MILLISECONDS)
    seed = config.derive_seed(11)
    fast_p50, fast_p99, fast_jitter, fast_n = _measure(
        _fast_scenario(seed, duration))
    slow_p50, slow_p99, slow_jitter, slow_n = _measure(
        _slow_scenario(seed, duration))
    report.tables.append(render_table(
        ["regime", "delivered", "p50 latency", "p99 latency",
         "interarrival jitter"],
        [
            ["fast (switch-buffered, ns OCS, FPGA sched)",
             str(fast_n), format_time(round(fast_p50)),
             format_time(round(fast_p99)),
             format_time(round(fast_jitter))],
            ["slow (host-buffered, ms epochs, CPU sched)",
             str(slow_n), format_time(round(slow_p50)),
             format_time(round(slow_p99)),
             format_time(round(slow_jitter))],
        ],
        title=f"CBR {CBR_BYTES}B every {format_time(CBR_PERIOD_PS)}, "
              f"host0 -> host1, {N_PORTS} ports"))
    report.data["fast"] = {"p50_ps": fast_p50, "p99_ps": fast_p99,
                           "jitter_ps": fast_jitter, "delivered": fast_n}
    report.data["slow"] = {"p50_ps": slow_p50, "p99_ps": slow_p99,
                           "jitter_ps": slow_jitter, "delivered": slow_n}
    if slow_p99 > 10 * fast_p99 and fast_n > 0 and slow_n > 0:
        report.expectations.append(
            f"p99 latency degrades {slow_p99 / max(fast_p99, 1):.0f}x "
            "under slow scheduling (paper: 'increase the overall "
            "traffic latency')")
    if slow_jitter > 10 * max(fast_jitter, 1):
        report.expectations.append(
            f"jitter degrades {slow_jitter / max(fast_jitter, 1):.0f}x "
            "under slow scheduling (paper: '... and jitter')")
    return report


def run_e4(quick: bool = False) -> ExperimentReport:
    """Historical entry point; see :func:`run`."""
    return run(ExperimentConfig(quick=quick))


__all__ = ["run", "run_e4", "KNOWN_OVERRIDES"]
