"""Maximum-weight matching schedulers.

MWM (weight = VOQ occupancy or age) is the throughput-optimal
gold standard for input-queued switches (Tassiulas & Ephremides): it
stabilises every admissible load, at the cost of O(n³) work that is
hopeless at nanosecond cadence but fine as an upper baseline.

Two variants:

* :class:`MwmScheduler` — exact, via the Jonker-Volgenant solver in
  ``scipy.optimize.linear_sum_assignment`` on the negated weight
  matrix.  Zero-demand pairs are pruned from the result so the OCS is
  never configured for circuits nobody wants.
* :class:`GreedyMwmScheduler` — sort edges by weight, add greedily.
  A 1/2-approximation that hardware can pipeline (compare-and-sweep
  networks); the quality/cost trade-off E7 quantifies.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.schedulers.base import Scheduler, ScheduleResult
from repro.schedulers.matching import Matching


class MwmScheduler(Scheduler):
    """Exact maximum-weight matching on the demand matrix."""

    name = "mwm"

    def compute(self, demand: np.ndarray) -> ScheduleResult:
        demand = self._check_demand(demand)
        n = self.n_ports
        # linear_sum_assignment minimises, so negate.  It also requires
        # a square matrix and produces a *full* permutation; prune pairs
        # with zero demand afterwards.
        rows, cols = linear_sum_assignment(-demand)
        out_of: List[Optional[int]] = [None] * n
        for inp, out in zip(rows.tolist(), cols.tolist()):
            if demand[inp, out] > 0:
                out_of[inp] = out
        self.last_stats = {"iterations": 1, "matchings": 1}
        return ScheduleResult(matchings=[(Matching(out_of), 0)])


class GreedyMwmScheduler(Scheduler):
    """Greedy 1/2-approximate maximum-weight matching (iLQF-style).

    Edges are visited in decreasing weight; ties break on (src, dst)
    index for determinism.
    """

    name = "greedy-mwm"

    def compute(self, demand: np.ndarray) -> ScheduleResult:
        demand = self._check_demand(demand)
        n = self.n_ports
        src_idx, dst_idx = np.nonzero(demand > 0)
        weights = demand[src_idx, dst_idx]
        # Sort by weight descending, then (src, dst) ascending.
        order = np.lexsort((dst_idx, src_idx, -weights))
        out_of: List[Optional[int]] = [None] * n
        used_out = [False] * n
        added = 0
        for k in order.tolist():
            inp = int(src_idx[k])
            out = int(dst_idx[k])
            if out_of[inp] is None and not used_out[out]:
                out_of[inp] = out
                used_out[out] = True
                added += 1
                if added == n:
                    break
        self.last_stats = {"iterations": 1, "matchings": 1}
        return ScheduleResult(matchings=[(Matching(out_of), 0)])


__all__ = ["MwmScheduler", "GreedyMwmScheduler"]
