"""Single-rack hybrid topology builder.

The paper's testbed is one hybrid switch (EPS + OCS sharing a scheduler)
with hosts H1..Hn attached — see Figure 2.  :func:`build_rack` creates
the hosts and their access links; the switch-side logic blocks are wired
in by :class:`repro.core.framework.HybridSwitchFramework`, which owns
the other end of every link.

Keeping topology construction separate from the framework lets tests
exercise hosts/links in isolation and keeps the framework constructor
readable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.net.host import Host, HostBufferMode
from repro.net.link import Link
from repro.sim.engine import Simulator
from repro.sim.errors import ConfigurationError
from repro.sim.time import GIGABIT, NANOSECONDS


@dataclass
class HybridRackTopology:
    """The host side of a rack: hosts plus their access links.

    ``uplinks[i]`` carries host *i* → switch port *i*;
    ``downlinks[i]`` carries switch port *i* → host *i*.  Downlink sinks
    are pre-connected to ``hosts[i].receive``; uplink sinks are left for
    the switch to connect.
    """

    sim: Simulator
    hosts: List[Host] = field(default_factory=list)
    uplinks: List[Link] = field(default_factory=list)
    downlinks: List[Link] = field(default_factory=list)

    @property
    def n_ports(self) -> int:
        """Number of switch ports (== number of hosts)."""
        return len(self.hosts)

    def set_clock_skew(self, host_id: int, skew_ps: int) -> None:
        """Adjust one host's clock skew (sync-sensitivity experiments)."""
        self.hosts[host_id].clock_skew_ps = skew_ps


def build_rack(sim: Simulator, n_hosts: int,
               link_rate_bps: float = 10 * GIGABIT,
               propagation_ps: int = 50 * NANOSECONDS,
               mode: HostBufferMode = HostBufferMode.SWITCH_BUFFERED,
               clock_skew_ps: int = 0) -> HybridRackTopology:
    """Create ``n_hosts`` hosts with symmetric access links.

    Parameters mirror the paper's example operating point: default
    10 Gbps per port; 50 ns propagation is ~10 m of fibre, a typical
    in-rack run.  ``clock_skew_ps`` applies to every host (individual
    skews can be set afterwards via :meth:`HybridRackTopology.set_clock_skew`).
    """
    if n_hosts < 2:
        raise ConfigurationError(
            f"a rack needs at least 2 hosts, got {n_hosts}")
    topo = HybridRackTopology(sim)
    for host_id in range(n_hosts):
        uplink = Link(sim, f"up{host_id}", link_rate_bps, propagation_ps)
        downlink = Link(sim, f"down{host_id}", link_rate_bps, propagation_ps)
        host = Host(sim, host_id, uplink, mode=mode,
                    clock_skew_ps=clock_skew_ps)
        downlink.connect(host.receive)
        topo.hosts.append(host)
        topo.uplinks.append(uplink)
        topo.downlinks.append(downlink)
    return topo


__all__ = ["HybridRackTopology", "build_rack"]
