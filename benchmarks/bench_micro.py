"""Microbenchmarks: raw speed of the hot paths.

These are conventional pytest-benchmark measurements (many rounds) of
the pieces that dominate experiment wall-clock: scheduler ``compute``
calls, the event engine, and the cell fabric's slot loop.  They guard
against performance regressions that would silently make the experiment
harness unusable.
"""

import os

import numpy as np
import pytest

from repro.fabric.cellsim import CellFabricSim
from repro.fabric.workloads import uniform_rates
from repro.schedulers.bvn import BvnScheduler
from repro.schedulers.islip import IslipScheduler
from repro.schedulers.mwm import GreedyMwmScheduler, MwmScheduler
from repro.schedulers.solstice import SolsticeScheduler
from repro.sim.engine import Simulator
from repro.sim.time import MICROSECONDS


#: Reduced mode (CI bench-smoke): keep one bench per hot path, skip the
#: large-port variants whose runtime adds trajectory data but no new
#: coverage.  Full mode remains the default for local perf work.
_QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))
full_size_only = pytest.mark.skipif(
    _QUICK, reason="REPRO_BENCH_QUICK=1: reduced benchmark mode")


def _demand(n, seed=0):
    rng = np.random.default_rng(seed)
    demand = rng.exponential(10_000, (n, n))
    np.fill_diagonal(demand, 0.0)
    return demand


class TestSchedulerComputeSpeed:
    def test_islip4_16_ports(self, benchmark):
        scheduler = IslipScheduler(16, iterations=4)
        demand = _demand(16)
        benchmark(scheduler.compute, demand)

    @full_size_only
    def test_islip4_64_ports(self, benchmark):
        scheduler = IslipScheduler(64, iterations=4)
        demand = _demand(64)
        benchmark(scheduler.compute, demand)

    @full_size_only
    def test_mwm_64_ports(self, benchmark):
        scheduler = MwmScheduler(64)
        demand = _demand(64)
        benchmark(scheduler.compute, demand)

    @full_size_only
    def test_greedy_mwm_64_ports(self, benchmark):
        scheduler = GreedyMwmScheduler(64)
        demand = _demand(64)
        benchmark(scheduler.compute, demand)

    def test_bvn_16_ports(self, benchmark):
        scheduler = BvnScheduler(16)
        demand = _demand(16)
        benchmark(scheduler.compute, demand)

    def test_solstice_16_ports(self, benchmark):
        scheduler = SolsticeScheduler(16, reconfig_ps=20 * MICROSECONDS)
        demand = _demand(16)
        benchmark(scheduler.compute, demand)


class TestEngineSpeed:
    def test_event_dispatch_throughput(self, benchmark):
        def run_10k_events():
            sim = Simulator()
            remaining = [10_000]

            def tick():
                remaining[0] -= 1
                if remaining[0]:
                    sim.schedule(10, tick)

            sim.schedule(0, tick)
            sim.run()
            return sim.events_dispatched

        assert benchmark(run_10k_events) == 10_000


class TestFabricSpeed:
    def test_cellsim_1000_slots_islip(self, benchmark):
        def run():
            sched = IslipScheduler(16, iterations=1)
            sim = CellFabricSim(sched, uniform_rates(16, 0.8), seed=1)
            return sim.run(slots=1_000)

        stats = benchmark(run)
        assert stats.departures > 0
