"""Tests for exact and greedy maximum-weight matching."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedulers.mwm import GreedyMwmScheduler, MwmScheduler


def _brute_force_mwm_weight(demand: np.ndarray) -> float:
    """Optimal matching weight by exhaustive permutation search."""
    n = demand.shape[0]
    best = 0.0
    for perm in itertools.permutations(range(n)):
        weight = sum(demand[i, perm[i]] for i in range(n)
                     if demand[i, perm[i]] > 0)
        best = max(best, weight)
    return best


@st.composite
def small_demands(draw):
    n = draw(st.integers(min_value=2, max_value=5))
    values = draw(st.lists(st.integers(0, 50),
                           min_size=n * n, max_size=n * n))
    demand = np.array(values, dtype=float).reshape(n, n)
    np.fill_diagonal(demand, 0.0)
    return demand


class TestExactMwm:
    def test_picks_heaviest_pairing(self):
        demand = np.array([
            [0.0, 10.0, 1.0],
            [1.0, 0.0, 10.0],
            [10.0, 1.0, 0.0],
        ])
        matching = MwmScheduler(3).compute(demand).first
        assert matching.output_for(0) == 1
        assert matching.output_for(1) == 2
        assert matching.output_for(2) == 0

    def test_zero_demand_pairs_pruned(self):
        demand = np.zeros((3, 3))
        demand[0, 1] = 4.0
        matching = MwmScheduler(3).compute(demand).first
        assert matching.size == 1
        assert matching.output_for(0) == 1

    def test_all_zero_demand_gives_empty_matching(self):
        matching = MwmScheduler(4).compute(np.zeros((4, 4))).first
        assert matching.size == 0

    @given(small_demands())
    @settings(max_examples=30, deadline=None)
    def test_matches_brute_force_optimum(self, demand):
        matching = MwmScheduler(demand.shape[0]).compute(demand).first
        assert matching.weight(demand) == pytest.approx(
            _brute_force_mwm_weight(demand))


class TestGreedyMwm:
    def test_greedy_takes_heaviest_edge_first(self):
        demand = np.array([
            [0.0, 100.0, 1.0],
            [99.0, 0.0, 1.0],
            [1.0, 1.0, 0.0],
        ])
        matching = GreedyMwmScheduler(3).compute(demand).first
        assert matching.output_for(0) == 1  # the 100 edge

    def test_never_matches_zero_pairs(self):
        demand = np.zeros((4, 4))
        demand[1, 2] = 5
        matching = GreedyMwmScheduler(4).compute(demand).first
        assert list(matching.pairs()) == [(1, 2)]

    def test_deterministic_tie_break(self):
        demand = np.zeros((3, 3))
        demand[0, 1] = demand[0, 2] = demand[1, 2] = 7.0
        a = GreedyMwmScheduler(3).compute(demand).first
        b = GreedyMwmScheduler(3).compute(demand).first
        assert a == b

    @given(small_demands())
    @settings(max_examples=30, deadline=None)
    def test_at_least_half_of_optimum(self, demand):
        greedy = GreedyMwmScheduler(demand.shape[0])
        weight = greedy.compute(demand).first.weight(demand)
        optimum = _brute_force_mwm_weight(demand)
        assert weight >= optimum / 2 - 1e-9

    @given(small_demands())
    @settings(max_examples=30, deadline=None)
    def test_exact_at_least_greedy(self, demand):
        n = demand.shape[0]
        exact = MwmScheduler(n).compute(demand).first.weight(demand)
        greedy = GreedyMwmScheduler(n).compute(demand).first.weight(demand)
        assert exact >= greedy - 1e-9
